"""Classification of nodes and source–destination pairs by contact rate.

Section 5.2 of the paper splits the node population at the median contact
rate into high-rate (*in*) and low-rate (*out*) halves, then labels every
message by the class of its source and destination: ``in-in``, ``in-out``,
``out-in``, ``out-out``.  The four classes explain most of the variation in
optimal path duration and time to explosion (Figure 8) and in forwarding
performance (Figure 13).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, TypeVar

import numpy as np

from ..contacts import ContactTrace, NodeId

__all__ = [
    "NodeClass",
    "PairType",
    "classify_nodes",
    "classify_pair",
    "pair_type_of_message",
    "group_by_pair_type",
    "RateClassification",
]


class NodeClass(str, enum.Enum):
    """High-contact-rate ('in') or low-contact-rate ('out') node."""

    IN = "in"
    OUT = "out"


class PairType(str, enum.Enum):
    """Source/destination rate-class combination for a message."""

    IN_IN = "in-in"
    IN_OUT = "in-out"
    OUT_IN = "out-in"
    OUT_OUT = "out-out"

    @classmethod
    def from_classes(cls, source: NodeClass, destination: NodeClass) -> "PairType":
        mapping = {
            (NodeClass.IN, NodeClass.IN): cls.IN_IN,
            (NodeClass.IN, NodeClass.OUT): cls.IN_OUT,
            (NodeClass.OUT, NodeClass.IN): cls.OUT_IN,
            (NodeClass.OUT, NodeClass.OUT): cls.OUT_OUT,
        }
        return mapping[(source, destination)]

    @classmethod
    def ordered(cls) -> Tuple["PairType", ...]:
        """The presentation order used by the paper's figures."""
        return (cls.IN_IN, cls.IN_OUT, cls.OUT_IN, cls.OUT_OUT)


@dataclass(frozen=True)
class RateClassification:
    """Per-node rates, the median threshold, and the in/out labelling."""

    rates: Dict[NodeId, float]
    threshold: float
    classes: Dict[NodeId, NodeClass]

    def node_class(self, node: NodeId) -> NodeClass:
        return self.classes[node]

    def nodes_in_class(self, node_class: NodeClass) -> List[NodeId]:
        return sorted(n for n, c in self.classes.items() if c == node_class)

    def pair_type(self, source: NodeId, destination: NodeId) -> PairType:
        return PairType.from_classes(self.classes[source], self.classes[destination])


def classify_nodes(
    trace_or_rates,
    threshold: Optional[float] = None,
) -> RateClassification:
    """Split nodes into 'in' (rate above threshold) and 'out' (at or below).

    Parameters
    ----------
    trace_or_rates:
        Either a :class:`ContactTrace` (per-node contact rates are computed
        from it) or a ready-made ``{node: rate}`` mapping.
    threshold:
        The split point.  Defaults to the median rate, which is what the
        paper uses ("two equal-sized groups"); nodes strictly above the
        median are 'in', the rest are 'out'.
    """
    if isinstance(trace_or_rates, ContactTrace):
        rates = trace_or_rates.contact_rates()
    elif isinstance(trace_or_rates, Mapping):
        rates = dict(trace_or_rates)
    else:
        raise TypeError(
            f"expected ContactTrace or mapping of rates, got {type(trace_or_rates)!r}"
        )
    if not rates:
        raise ValueError("cannot classify an empty node set")
    values = np.array(list(rates.values()), dtype=float)
    cut = float(np.median(values)) if threshold is None else float(threshold)
    classes = {
        node: (NodeClass.IN if rate > cut else NodeClass.OUT)
        for node, rate in rates.items()
    }
    return RateClassification(rates=dict(rates), threshold=cut, classes=classes)


def classify_pair(
    classification: RateClassification,
    source: NodeId,
    destination: NodeId,
) -> PairType:
    """Pair type of a (source, destination) message under *classification*."""
    return classification.pair_type(source, destination)


def pair_type_of_message(
    trace: ContactTrace,
    source: NodeId,
    destination: NodeId,
) -> PairType:
    """Convenience one-shot classification straight from a trace."""
    return classify_pair(classify_nodes(trace), source, destination)


T = TypeVar("T")


def group_by_pair_type(
    items: Iterable[T],
    classification: RateClassification,
    endpoints,
) -> Dict[PairType, List[T]]:
    """Group arbitrary per-message items by their pair type.

    Parameters
    ----------
    items:
        Any per-message objects (explosion records, delivery results, ...).
    endpoints:
        A callable mapping an item to its ``(source, destination)`` pair.

    Returns
    -------
    A dict with an entry for each of the four pair types (possibly empty
    lists), in the paper's presentation order.
    """
    groups: Dict[PairType, List[T]] = {pt: [] for pt in PairType.ordered()}
    for item in items:
        source, destination = endpoints(item)
        groups[classification.pair_type(source, destination)].append(item)
    return groups
