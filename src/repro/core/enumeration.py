"""Enumeration of the k shortest valid paths for a message.

This module implements the dynamic program of Figure 3 in the paper: given a
message ``(σ, δ, t1)`` and the space-time graph of a contact trace, it walks
the timesteps in order while maintaining, for every node, up to ``k``
shortest (fewest-hop) valid paths that have reached that node, and it streams
out every valid path that reaches the destination together with its arrival
time.  The first emitted delivery is the optimal path (the one epidemic
forwarding would find); the stream as a whole is the raw material for the
path-explosion analysis (``T1``, ``T_n``, ``TE``) of Sections 4–5.

Validity (Section 4.1) is enforced by construction:

* **loop avoidance** — a path is never extended to a node it already visits;
* **minimal progress** — the destination is never an intermediate node;
* **first preference** — whenever a node holding paths is in contact with the
  destination, those paths are delivered at that step and removed, and every
  path elsewhere in the system that passes through that node is purged: any
  later delivery of such a path would arrive after the node could already
  have delivered it, so it is not a first-preference path.

Hand-off opportunities
----------------------
A stored path held by node ``x`` is handed to a neighbour ``y`` at step ``s``
when either (a) the contact edge ``x–y`` is *fresh* at ``s`` (it was not
active at ``s − 1``), or (b) the path itself arrived at ``x`` during step
``s``.  A path received during a step may continue over any active edge in
the same step (zero-weight chaining, as in the space-time graph of [13]).
This matches how messages actually propagate — a transfer happens when a
contact starts or when a new message arrives during an ongoing contact — and
avoids counting the same physical hand-off once per timestep for
long-lasting contacts.  The resulting counts are, if anything, conservative,
which is the same direction of conservatism the paper argues for when it
excludes looping paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..contacts import ContactTrace, NodeId
from .path import Path
from .space_time_graph import SpaceTimeGraph

__all__ = [
    "Delivery",
    "EnumerationResult",
    "PathEnumerator",
    "enumerate_paths",
    "epidemic_infection_times",
    "first_delivery_time",
]

#: Default number of paths kept per node, matching the paper's k >= 2000.
DEFAULT_K = 2000


@dataclass(frozen=True)
class Delivery:
    """One valid path reaching the destination.

    Attributes
    ----------
    path:
        The full path, ending at the destination.
    time:
        Arrival (vertex) time of the final hop, in seconds.
    step:
        The timestep index at which delivery occurred.
    """

    path: Path
    time: float
    step: int

    @property
    def hop_count(self) -> int:
        return self.path.hop_count

    @property
    def duration(self) -> float:
        return self.path.duration


@dataclass
class EnumerationResult:
    """The ordered stream of deliveries for one message.

    Attributes
    ----------
    source, destination:
        The message endpoints.
    creation_time:
        ``t1`` — when the message was generated.
    deliveries:
        All valid paths that reached the destination before enumeration
        stopped, sorted by arrival time (ties broken by hop count).
    stopped_early:
        True if enumeration stopped because a stop rule fired (k deliveries
        in one step, or the total-delivery cap); False if the trace window
        was exhausted.
    steps_processed:
        Number of timesteps the dynamic program iterated over.
    """

    source: NodeId
    destination: NodeId
    creation_time: float
    deliveries: List[Delivery] = field(default_factory=list)
    stopped_early: bool = False
    steps_processed: int = 0

    # ------------------------------------------------------------------
    @property
    def num_deliveries(self) -> int:
        return len(self.deliveries)

    @property
    def delivered(self) -> bool:
        """True if at least one path reached the destination."""
        return bool(self.deliveries)

    @property
    def optimal_duration(self) -> Optional[float]:
        """``T(σ, δ, t1)`` — duration of the optimal (first) path, or None."""
        if not self.deliveries:
            return None
        return self.deliveries[0].time - self.creation_time

    def arrival_times(self) -> List[float]:
        """Delivery times (absolute, seconds) of every enumerated path."""
        return [d.time for d in self.deliveries]

    def arrival_durations(self) -> List[float]:
        """Delays (relative to creation) of every enumerated path."""
        return [d.time - self.creation_time for d in self.deliveries]

    def time_of_nth_path(self, n: int) -> Optional[float]:
        """``T_n`` — absolute time at which the n-th path (1-based) arrives."""
        if n < 1:
            raise ValueError("n is 1-based and must be >= 1")
        if len(self.deliveries) < n:
            return None
        return self.deliveries[n - 1].time

    def paths(self) -> List[Path]:
        return [d.path for d in self.deliveries]


@dataclass
class _StoredPath:
    """A path currently held at some node, with bookkeeping for hand-offs."""

    path: Path
    node_set: FrozenSet[NodeId]
    arrival_step: int

    @property
    def hop_count(self) -> int:
        return self.path.hop_count


class PathEnumerator:
    """k-shortest valid path enumerator over a space-time graph.

    Parameters
    ----------
    graph:
        The space-time graph of the contact trace (Δ-discretised).
    k:
        Maximum number of paths maintained per node, and the per-step
        delivery count that triggers the paper's stop rule.
    """

    def __init__(self, graph: SpaceTimeGraph, k: int = DEFAULT_K) -> None:
        if k < 1:
            raise ValueError("k must be at least 1")
        self._graph = graph
        self._k = k

    @property
    def graph(self) -> SpaceTimeGraph:
        return self._graph

    @property
    def k(self) -> int:
        return self._k

    # ------------------------------------------------------------------
    def enumerate(
        self,
        source: NodeId,
        destination: NodeId,
        creation_time: float,
        max_total_deliveries: Optional[int] = None,
        max_steps: Optional[int] = None,
    ) -> EnumerationResult:
        """Enumerate valid paths for the message ``(source, destination, creation_time)``.

        Parameters
        ----------
        max_total_deliveries:
            Optional cap on the cumulative number of deliveries; enumeration
            stops at the end of the step in which the cap is reached.  This
            is how the path-explosion analysis asks for "the first n paths".
        max_steps:
            Optional cap on the number of timesteps processed (a horizon).

        Returns
        -------
        EnumerationResult
            Deliveries in arrival order.  Enumeration also stops, per the
            paper's rule, as soon as ``k`` or more paths reach the
            destination within a single timestep.
        """
        self._validate_message(source, destination, creation_time)
        graph = self._graph
        result = EnumerationResult(source=source, destination=destination,
                                   creation_time=creation_time)
        start_step = graph.step_of_time(creation_time)
        store: Dict[NodeId, List[_StoredPath]] = {
            source: [_StoredPath(Path.single(source, creation_time),
                                 frozenset((source,)), start_step)]
        }
        last_step = graph.num_steps
        if max_steps is not None:
            last_step = min(last_step, start_step + max_steps)

        for step in range(start_step, last_step):
            result.steps_processed += 1
            adjacency = graph.adjacency(step)
            if not adjacency and not store:
                continue
            arrival_time = graph.time_of_step(step)
            delivered_this_step = self._process_step(
                store, adjacency, step, arrival_time, destination, result,
            )
            if delivered_this_step >= self._k:
                result.stopped_early = True
                break
            if (max_total_deliveries is not None
                    and result.num_deliveries >= max_total_deliveries):
                result.stopped_early = True
                break
        self._sort_deliveries(result)
        return result

    # ------------------------------------------------------------------
    def _validate_message(self, source: NodeId, destination: NodeId, creation_time: float) -> None:
        nodes = self._graph.nodes
        if source not in nodes:
            raise ValueError(f"source {source} is not a node of the trace")
        if destination not in nodes:
            raise ValueError(f"destination {destination} is not a node of the trace")
        if source == destination:
            raise ValueError("source and destination must differ")
        if not 0 <= creation_time <= self._graph.trace.duration:
            raise ValueError(
                f"creation time {creation_time} outside the trace window "
                f"[0, {self._graph.trace.duration}]"
            )

    # ------------------------------------------------------------------
    def _process_step(
        self,
        store: Dict[NodeId, List[_StoredPath]],
        adjacency: Dict[NodeId, Set[NodeId]],
        step: int,
        arrival_time: float,
        destination: NodeId,
        result: EnumerationResult,
    ) -> int:
        """Run deliveries and hand-offs for one timestep.

        Returns the number of deliveries made during this step.
        """
        graph = self._graph
        delivered = 0
        dest_neighbors: Set[NodeId] = set(adjacency.get(destination, ()))

        # 1. Deliveries from nodes already holding paths (first preference:
        #    their stored paths are delivered now and removed).
        for node in list(dest_neighbors):
            held = store.get(node)
            if not held:
                continue
            for stored in held:
                self._emit(result, stored.path, destination, arrival_time, step)
                delivered += 1
            store[node] = []

        # 1b. First-preference purge: any path that passes through a node
        #     currently in contact with the destination can only deliver
        #     *later* than that node could have delivered it, so it is not a
        #     first-preference path and is dropped everywhere in the system.
        if dest_neighbors:
            for node, held in store.items():
                if held:
                    store[node] = [s for s in held
                                   if not (s.node_set & dest_neighbors)]

        # 2. Hand-offs.  Work from a snapshot of the stores taken after the
        #    delivery phase, so paths placed during this step are extended
        #    exactly once (by the within-step cascade below).
        frontier: List[Tuple[NodeId, _StoredPath]] = []
        snapshot = {node: list(held) for node, held in store.items() if held}
        for node, held in snapshot.items():
            if node not in adjacency:
                continue
            neighbors = adjacency[node]
            for peer in neighbors:
                if peer == destination:
                    continue
                fresh = not (step > 0 and graph.in_contact(node, peer, step - 1))
                for stored in held:
                    if not fresh and stored.arrival_step < step:
                        # Ongoing contact, old path: the hand-off already
                        # happened in an earlier step.
                        continue
                    if peer in stored.node_set:
                        continue
                    new_path = stored.path.extended(peer, arrival_time)
                    new_stored = _StoredPath(new_path,
                                             stored.node_set | {peer}, step)
                    delivered += self._place(
                        store, adjacency, new_stored, peer, destination,
                        arrival_time, step, result, frontier,
                    )

        # 3. Within-step cascade: paths that just arrived can keep moving
        #    over any active edge during the same step.
        while frontier:
            node, stored = frontier.pop()
            neighbors = adjacency.get(node)
            if not neighbors:
                continue
            for peer in neighbors:
                if peer == destination or peer in stored.node_set:
                    continue
                new_path = stored.path.extended(peer, arrival_time)
                new_stored = _StoredPath(new_path, stored.node_set | {peer}, step)
                delivered += self._place(
                    store, adjacency, new_stored, peer, destination,
                    arrival_time, step, result, frontier,
                )
        return delivered

    def _place(
        self,
        store: Dict[NodeId, List[_StoredPath]],
        adjacency: Dict[NodeId, Set[NodeId]],
        stored: _StoredPath,
        node: NodeId,
        destination: NodeId,
        arrival_time: float,
        step: int,
        result: EnumerationResult,
        frontier: List[Tuple[NodeId, _StoredPath]],
    ) -> int:
        """Place a newly created path at *node*.

        If *node* is currently in contact with the destination the path is
        delivered immediately (and, per first preference, neither stored nor
        extended further).  Otherwise it joins the node's store subject to
        the k-shortest cap and the within-step frontier.

        Returns the number of deliveries caused (0 or 1).
        """
        if destination in adjacency.get(node, ()):  # immediate delivery
            self._emit(result, stored.path, destination, arrival_time, step)
            return 1
        held = store.setdefault(node, [])
        if len(held) < self._k:
            held.append(stored)
            frontier.append((node, stored))
            return 0
        # At capacity: keep the k shortest by hop count.
        worst_index = max(range(len(held)), key=lambda i: held[i].hop_count)
        if held[worst_index].hop_count > stored.hop_count:
            held[worst_index] = stored
            frontier.append((node, stored))
        return 0

    @staticmethod
    def _emit(result: EnumerationResult, path: Path, destination: NodeId,
              arrival_time: float, step: int) -> None:
        delivered_path = path.extended(destination, arrival_time)
        result.deliveries.append(Delivery(path=delivered_path,
                                          time=arrival_time, step=step))

    @staticmethod
    def _sort_deliveries(result: EnumerationResult) -> None:
        result.deliveries.sort(key=lambda d: (d.time, d.hop_count))


# ----------------------------------------------------------------------
# module-level conveniences
# ----------------------------------------------------------------------
def enumerate_paths(
    trace_or_graph,
    source: NodeId,
    destination: NodeId,
    creation_time: float,
    k: int = DEFAULT_K,
    max_total_deliveries: Optional[int] = None,
    delta: float = 10.0,
) -> EnumerationResult:
    """One-shot enumeration from a trace or a prebuilt space-time graph.

    When iterating over many messages of the same trace, build the
    :class:`SpaceTimeGraph` once and use :class:`PathEnumerator` directly to
    avoid rebuilding it per message.
    """
    if isinstance(trace_or_graph, SpaceTimeGraph):
        graph = trace_or_graph
    elif isinstance(trace_or_graph, ContactTrace):
        graph = SpaceTimeGraph(trace_or_graph, delta=delta)
    else:
        raise TypeError(
            f"expected ContactTrace or SpaceTimeGraph, got {type(trace_or_graph)!r}"
        )
    enumerator = PathEnumerator(graph, k=k)
    return enumerator.enumerate(source, destination, creation_time,
                                max_total_deliveries=max_total_deliveries)


def epidemic_infection_times(
    graph: SpaceTimeGraph,
    source: NodeId,
    creation_time: float,
) -> Dict[NodeId, float]:
    """Earliest time each node can receive a message under epidemic forwarding.

    Implemented as a step-wise epidemic closure over the space-time graph:
    at every step, every connected component of the contact graph that
    contains an infected node becomes entirely infected at that step's vertex
    time.  The source is "infected" at the creation time itself.

    The value for a node equals the arrival time of the optimal path to that
    node, i.e. ``T(σ, x, t1) = T_Epidemic`` from the paper.
    """
    if source not in graph.nodes:
        raise ValueError(f"source {source} is not a node of the trace")
    infection: Dict[NodeId, float] = {source: creation_time}
    start_step = graph.step_of_time(creation_time)
    for step in range(start_step, graph.num_steps):
        adjacency = graph.adjacency(step)
        if not adjacency:
            continue
        if len(infection) == len(graph.nodes):
            break
        arrival_time = graph.time_of_step(step)
        for component in graph.components(step):
            if any(node in infection for node in component):
                for node in component:
                    infection.setdefault(node, arrival_time)
    return infection


def first_delivery_time(
    graph: SpaceTimeGraph,
    source: NodeId,
    destination: NodeId,
    creation_time: float,
) -> Optional[float]:
    """``T1`` — arrival time of the optimal path, or None if undeliverable.

    Cheaper than full enumeration; agrees with the first delivery of
    :meth:`PathEnumerator.enumerate` (a property exercised by the tests).
    """
    if destination not in graph.nodes:
        raise ValueError(f"destination {destination} is not a node of the trace")
    times = epidemic_infection_times(graph, source, creation_time)
    return times.get(destination)
