"""Enumeration of the k shortest valid paths for a message.

This module implements the dynamic program of Figure 3 in the paper: given a
message ``(σ, δ, t1)`` and the space-time graph of a contact trace, it walks
the timesteps in order while maintaining, for every node, up to ``k``
shortest (fewest-hop) valid paths that have reached that node, and it streams
out every valid path that reaches the destination together with its arrival
time.  The first emitted delivery is the optimal path (the one epidemic
forwarding would find); the stream as a whole is the raw material for the
path-explosion analysis (``T1``, ``T_n``, ``TE``) of Sections 4–5.

Validity (Section 4.1) is enforced by construction:

* **loop avoidance** — a path is never extended to a node it already visits;
* **minimal progress** — the destination is never an intermediate node;
* **first preference** — whenever a node holding paths is in contact with the
  destination, those paths are delivered at that step and removed, and every
  path elsewhere in the system that passes through that node is purged: any
  later delivery of such a path would arrive after the node could already
  have delivered it, so it is not a first-preference path.

Hand-off opportunities
----------------------
A stored path held by node ``x`` is handed to a neighbour ``y`` at step ``s``
when either (a) the contact edge ``x–y`` is *fresh* at ``s`` (it was not
active at ``s − 1``), or (b) the path itself arrived at ``x`` during step
``s``.  A path received during a step may continue over any active edge in
the same step (zero-weight chaining, as in the space-time graph of [13]).
This matches how messages actually propagate — a transfer happens when a
contact starts or when a new message arrives during an ongoing contact — and
avoids counting the same physical hand-off once per timestep for
long-lasting contacts.  The resulting counts are, if anything, conservative,
which is the same direction of conservatism the paper argues for when it
excludes looping paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..contacts import ContactTrace, NodeId
from .path import Hop, Path
from .space_time_graph import SpaceTimeGraph

__all__ = [
    "Delivery",
    "EnumerationResult",
    "PathEnumerator",
    "enumerate_paths",
    "enumerate_batch",
    "epidemic_infection_times",
    "first_delivery_time",
]

#: Default number of paths kept per node, matching the paper's k >= 2000.
DEFAULT_K = 2000

#: Engines accepted by :class:`PathEnumerator`.  ``"fast"`` runs the interned
#: bitmask dynamic program over the graph's precomputed step tables;
#: ``"reference"`` runs the original frozenset/Path implementation.  Both
#: produce identical delivery streams (enforced by the equivalence suite).
ENGINES = ("fast", "reference")


@dataclass(frozen=True)
class Delivery:
    """One valid path reaching the destination.

    Attributes
    ----------
    path:
        The full path, ending at the destination.
    time:
        Arrival (vertex) time of the final hop, in seconds.
    step:
        The timestep index at which delivery occurred.
    """

    path: Path
    time: float
    step: int

    @property
    def hop_count(self) -> int:
        return self.path.hop_count

    @property
    def duration(self) -> float:
        return self.path.duration


@dataclass
class EnumerationResult:
    """The ordered stream of deliveries for one message.

    Attributes
    ----------
    source, destination:
        The message endpoints.
    creation_time:
        ``t1`` — when the message was generated.
    deliveries:
        All valid paths that reached the destination before enumeration
        stopped, sorted by arrival time (ties broken by hop count).
    stopped_early:
        True if enumeration stopped because a stop rule fired (k deliveries
        in one step, or the total-delivery cap); False if the trace window
        was exhausted.
    steps_processed:
        Number of timesteps the dynamic program iterated over.
    """

    source: NodeId
    destination: NodeId
    creation_time: float
    deliveries: List[Delivery] = field(default_factory=list)
    stopped_early: bool = False
    steps_processed: int = 0

    # ------------------------------------------------------------------
    @property
    def num_deliveries(self) -> int:
        return len(self.deliveries)

    @property
    def delivered(self) -> bool:
        """True if at least one path reached the destination."""
        return bool(self.deliveries)

    @property
    def optimal_duration(self) -> Optional[float]:
        """``T(σ, δ, t1)`` — duration of the optimal (first) path, or None."""
        if not self.deliveries:
            return None
        return self.deliveries[0].time - self.creation_time

    def arrival_times(self) -> List[float]:
        """Delivery times (absolute, seconds) of every enumerated path."""
        return [d.time for d in self.deliveries]

    def arrival_durations(self) -> List[float]:
        """Delays (relative to creation) of every enumerated path."""
        return [d.time - self.creation_time for d in self.deliveries]

    def time_of_nth_path(self, n: int) -> Optional[float]:
        """``T_n`` — absolute time at which the n-th path (1-based) arrives."""
        if n < 1:
            raise ValueError("n is 1-based and must be >= 1")
        if len(self.deliveries) < n:
            return None
        return self.deliveries[n - 1].time

    def paths(self) -> List[Path]:
        return [d.path for d in self.deliveries]


@dataclass
class _StoredPath:
    """A path currently held at some node, with bookkeeping for hand-offs."""

    path: Path
    node_set: FrozenSet[NodeId]
    arrival_step: int

    @property
    def hop_count(self) -> int:
        return self.path.hop_count


class PathEnumerator:
    """k-shortest valid path enumerator over a space-time graph.

    Parameters
    ----------
    graph:
        The space-time graph of the contact trace (Δ-discretised).
    k:
        Maximum number of paths maintained per node, and the per-step
        delivery count that triggers the paper's stop rule.
    engine:
        ``"fast"`` (default) — the interned bitmask dynamic program backed by
        the graph's precomputed :class:`~repro.core.fastpath.StepTables`;
        ``"reference"`` — the original frozenset/Path implementation, kept as
        the ground truth the fast engine is verified against.  Both engines
        emit byte-identical delivery streams.
    """

    def __init__(self, graph: SpaceTimeGraph, k: int = DEFAULT_K,
                 engine: str = "fast") -> None:
        if k < 1:
            raise ValueError("k must be at least 1")
        if engine not in ENGINES:
            raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
        self._graph = graph
        self._k = k
        self._engine = engine

    @property
    def graph(self) -> SpaceTimeGraph:
        return self._graph

    @property
    def k(self) -> int:
        return self._k

    @property
    def engine(self) -> str:
        return self._engine

    # ------------------------------------------------------------------
    def enumerate(
        self,
        source: NodeId,
        destination: NodeId,
        creation_time: float,
        max_total_deliveries: Optional[int] = None,
        max_steps: Optional[int] = None,
    ) -> EnumerationResult:
        """Enumerate valid paths for the message ``(source, destination, creation_time)``.

        Parameters
        ----------
        max_total_deliveries:
            Optional cap on the cumulative number of deliveries; enumeration
            stops at the end of the step in which the cap is reached.  This
            is how the path-explosion analysis asks for "the first n paths".
        max_steps:
            Optional cap on the number of timesteps processed (a horizon).

        Returns
        -------
        EnumerationResult
            Deliveries in arrival order.  Enumeration also stops, per the
            paper's rule, as soon as ``k`` or more paths reach the
            destination within a single timestep.
        """
        self._validate_message(source, destination, creation_time)
        if self._engine == "fast":
            return self._enumerate_fast(source, destination, creation_time,
                                        max_total_deliveries, max_steps)
        return self._enumerate_reference(source, destination, creation_time,
                                         max_total_deliveries, max_steps)

    def enumerate_batch(
        self,
        messages: Iterable[Tuple[NodeId, NodeId, float]],
        max_total_deliveries: Optional[int] = None,
        max_steps: Optional[int] = None,
    ) -> List[EnumerationResult]:
        """Enumerate every ``(source, destination, creation_time)`` message.

        The space-time graph's step tables are warmed once up front, so the
        per-message cost is the dynamic program alone.  Results are returned
        in input order.
        """
        if self._engine == "fast":
            self._graph.step_tables()
        return [
            self.enumerate(source, destination, creation_time,
                           max_total_deliveries=max_total_deliveries,
                           max_steps=max_steps)
            for source, destination, creation_time in messages
        ]

    # ------------------------------------------------------------------
    def _enumerate_reference(
        self,
        source: NodeId,
        destination: NodeId,
        creation_time: float,
        max_total_deliveries: Optional[int],
        max_steps: Optional[int],
    ) -> EnumerationResult:
        graph = self._graph
        result = EnumerationResult(source=source, destination=destination,
                                   creation_time=creation_time)
        start_step = graph.step_of_time(creation_time)
        store: Dict[NodeId, List[_StoredPath]] = {
            source: [_StoredPath(Path.single(source, creation_time),
                                 frozenset((source,)), start_step)]
        }
        # Store entries are deleted when they go empty (so dead nodes stop
        # being iterated), but the hand-off snapshot must still process
        # nodes in the order the original algorithm would: a dict key's
        # position is its *first*-insertion position, kept here forever even
        # across delete/re-insert cycles.
        first_slot: Dict[NodeId, int] = {source: 0}
        last_step = graph.num_steps
        if max_steps is not None:
            last_step = min(last_step, start_step + max_steps)

        for step in range(start_step, last_step):
            result.steps_processed += 1
            adjacency = graph.adjacency(step)
            if not adjacency and not store:
                continue
            arrival_time = graph.time_of_step(step)
            delivered_this_step = self._process_step(
                store, first_slot, adjacency, step, arrival_time, destination,
                result,
            )
            if delivered_this_step >= self._k:
                result.stopped_early = True
                break
            if (max_total_deliveries is not None
                    and result.num_deliveries >= max_total_deliveries):
                result.stopped_early = True
                break
        self._sort_deliveries(result)
        return result

    # ------------------------------------------------------------------
    def _validate_message(self, source: NodeId, destination: NodeId, creation_time: float) -> None:
        nodes = self._graph.nodes
        if source not in nodes:
            raise ValueError(f"source {source} is not a node of the trace")
        if destination not in nodes:
            raise ValueError(f"destination {destination} is not a node of the trace")
        if source == destination:
            raise ValueError("source and destination must differ")
        if not 0 <= creation_time <= self._graph.trace.duration:
            raise ValueError(
                f"creation time {creation_time} outside the trace window "
                f"[0, {self._graph.trace.duration}]"
            )

    # ------------------------------------------------------------------
    def _process_step(
        self,
        store: Dict[NodeId, List[_StoredPath]],
        first_slot: Dict[NodeId, int],
        adjacency: Dict[NodeId, Set[NodeId]],
        step: int,
        arrival_time: float,
        destination: NodeId,
        result: EnumerationResult,
    ) -> int:
        """Run deliveries and hand-offs for one timestep.

        Returns the number of deliveries made during this step.
        """
        graph = self._graph
        delivered = 0
        dest_neighbors: Set[NodeId] = set(adjacency.get(destination, ()))

        # 1. Deliveries from nodes already holding paths (first preference:
        #    their stored paths are delivered now and removed).  The store
        #    entry is deleted outright — leaving an empty list behind would
        #    make the purge and snapshot phases below iterate dead entries
        #    for the rest of the enumeration.
        for node in list(dest_neighbors):
            held = store.get(node)
            if not held:
                continue
            for stored in held:
                self._emit(result, stored.path, destination, arrival_time, step)
                delivered += 1
            del store[node]

        # 1b. First-preference purge: any path that passes through a node
        #     currently in contact with the destination can only deliver
        #     *later* than that node could have delivered it, so it is not a
        #     first-preference path and is dropped everywhere in the system.
        #     Nodes left with no paths are dropped from the store entirely.
        if dest_neighbors:
            emptied: List[NodeId] = []
            for node, held in store.items():
                kept = [s for s in held if not (s.node_set & dest_neighbors)]
                if len(kept) != len(held):
                    if kept:
                        store[node] = kept
                    else:
                        emptied.append(node)
            for node in emptied:
                del store[node]

        # 2. Hand-offs.  Work from a snapshot of the stores taken after the
        #    delivery phase, so paths placed during this step are extended
        #    exactly once (by the within-step cascade below).  Nodes are
        #    processed in first-insertion order — the position they would
        #    occupy in the store dict had empty entries never been pruned.
        frontier: List[Tuple[NodeId, _StoredPath]] = []
        ordered = sorted(store.items(), key=lambda item: first_slot[item[0]])
        snapshot = {node: list(held) for node, held in ordered}
        for node, held in snapshot.items():
            if node not in adjacency:
                continue
            neighbors = adjacency[node]
            for peer in neighbors:
                if peer == destination:
                    continue
                fresh = not (step > 0 and graph.in_contact(node, peer, step - 1))
                for stored in held:
                    if not fresh and stored.arrival_step < step:
                        # Ongoing contact, old path: the hand-off already
                        # happened in an earlier step.
                        continue
                    if peer in stored.node_set:
                        continue
                    new_path = stored.path.extended(peer, arrival_time)
                    new_stored = _StoredPath(new_path,
                                             stored.node_set | {peer}, step)
                    delivered += self._place(
                        store, first_slot, adjacency, new_stored, peer,
                        destination, arrival_time, step, result, frontier,
                    )

        # 3. Within-step cascade: paths that just arrived can keep moving
        #    over any active edge during the same step.
        while frontier:
            node, stored = frontier.pop()
            neighbors = adjacency.get(node)
            if not neighbors:
                continue
            for peer in neighbors:
                if peer == destination or peer in stored.node_set:
                    continue
                new_path = stored.path.extended(peer, arrival_time)
                new_stored = _StoredPath(new_path, stored.node_set | {peer}, step)
                delivered += self._place(
                    store, first_slot, adjacency, new_stored, peer,
                    destination, arrival_time, step, result, frontier,
                )
        return delivered

    def _place(
        self,
        store: Dict[NodeId, List[_StoredPath]],
        first_slot: Dict[NodeId, int],
        adjacency: Dict[NodeId, Set[NodeId]],
        stored: _StoredPath,
        node: NodeId,
        destination: NodeId,
        arrival_time: float,
        step: int,
        result: EnumerationResult,
        frontier: List[Tuple[NodeId, _StoredPath]],
    ) -> int:
        """Place a newly created path at *node*.

        If *node* is currently in contact with the destination the path is
        delivered immediately (and, per first preference, neither stored nor
        extended further).  Otherwise it joins the node's store subject to
        the k-shortest cap and the within-step frontier.

        Returns the number of deliveries caused (0 or 1).
        """
        if destination in adjacency.get(node, ()):  # immediate delivery
            self._emit(result, stored.path, destination, arrival_time, step)
            return 1
        held = store.get(node)
        if held is None:
            held = store[node] = []
            if node not in first_slot:
                first_slot[node] = len(first_slot)
        if len(held) < self._k:
            held.append(stored)
            frontier.append((node, stored))
            return 0
        # At capacity: keep the k shortest by hop count.
        worst_index = max(range(len(held)), key=lambda i: held[i].hop_count)
        if held[worst_index].hop_count > stored.hop_count:
            held[worst_index] = stored
            frontier.append((node, stored))
        return 0

    @staticmethod
    def _emit(result: EnumerationResult, path: Path, destination: NodeId,
              arrival_time: float, step: int) -> None:
        delivered_path = path.extended(destination, arrival_time)
        result.deliveries.append(Delivery(path=delivered_path,
                                          time=arrival_time, step=step))

    @staticmethod
    def _sort_deliveries(result: EnumerationResult) -> None:
        result.deliveries.sort(key=lambda d: (d.time, d.hop_count))

    # ------------------------------------------------------------------
    # fast engine: interned bitmask dynamic program
    # ------------------------------------------------------------------
    # A stored path is the tuple (link, mask, arrival_step, hop_count) where
    #
    # * link  — a (parent_link, node, arrival_time) cons cell; the full hop
    #   sequence is materialised into a Path object only when the path is
    #   actually delivered;
    # * mask  — int bitmask of the visited nodes (loop avoidance and the
    #   first-preference purge become single AND operations);
    # * arrival_step / hop_count — as in the reference engine.
    #
    # The engine replays the reference engine's iteration orders exactly
    # (see fastpath module docstring), so the two delivery streams are
    # identical including tie order.

    def _enumerate_fast(
        self,
        source: NodeId,
        destination: NodeId,
        creation_time: float,
        max_total_deliveries: Optional[int],
        max_steps: Optional[int],
    ) -> EnumerationResult:
        graph = self._graph
        tables = graph.step_tables()
        interner = tables.interner
        k = self._k
        delta = graph.delta

        src_idx = interner.index_of(source)
        dst_idx = interner.index_of(destination)
        result = EnumerationResult(source=source, destination=destination,
                                   creation_time=creation_time)
        start_step = graph.step_of_time(creation_time)
        last_step = graph.num_steps
        if max_steps is not None:
            last_step = min(last_step, start_step + max_steps)

        root_link = (None, source, creation_time)
        store: Dict[int, List[tuple]] = {
            src_idx: [(root_link, 1 << src_idx, start_step, 0)]
        }
        # first-insertion order of store keys (see _enumerate_reference):
        # preserved across delete/re-insert cycles so the hand-off snapshot
        # processes nodes exactly as the reference engine does.
        first_slot: Dict[int, int] = {src_idx: 0}
        # emissions: (time, delivered_hop_count, step, delivered_link)
        emitted: List[Tuple[float, int, int, tuple]] = []
        # cached (max_hop, first_max_index) per node store at capacity
        cap_cache: Dict[int, Tuple[int, int]] = {}

        raw_adjacency = graph._adjacency
        neighbor_masks = tables.neighbor_masks
        next_active = tables.next_active
        steps_counted = 0
        total_deliveries = 0
        step = start_step
        while step < last_step:
            if not store:
                # No paths anywhere: the remaining steps are no-ops; count
                # them as processed, as the reference engine would.
                steps_counted += last_step - step
                break
            masks_t = neighbor_masks[step]
            dest_mask = masks_t.get(dst_idx, 0)
            if not dest_mask and all(idx not in masks_t for idx in store):
                # Neither the destination nor any path-holding node has a
                # contact edge: jump to the next step where one does.
                jump = min(
                    min(next_active[idx][step] for idx in store),
                    next_active[dst_idx][step],
                    last_step,
                )
                steps_counted += jump - step
                step = jump
                continue
            steps_counted += 1
            arrival_time = (step + 1) * delta
            delivered_this_step = self._process_step_fast(
                store, first_slot, cap_cache, emitted, step, arrival_time,
                dest_mask, dst_idx, destination, raw_adjacency[step], tables,
            )
            total_deliveries += delivered_this_step
            if delivered_this_step >= k:
                result.stopped_early = True
                break
            if (max_total_deliveries is not None
                    and total_deliveries >= max_total_deliveries):
                result.stopped_early = True
                break
            step += 1
        result.steps_processed = steps_counted
        emitted.sort(key=lambda record: (record[0], record[1]))
        result.deliveries = [
            Delivery(path=Path(hops=_materialize_hops(link)), time=time, step=step)
            for time, _, step, link in emitted
        ]
        return result

    def _process_step_fast(
        self,
        store: Dict[int, List[tuple]],
        first_slot: Dict[int, int],
        cap_cache: Dict[int, Tuple[int, int]],
        emitted: List[Tuple[float, int, int, tuple]],
        step: int,
        arrival_time: float,
        dest_mask: int,
        dst_idx: int,
        destination: NodeId,
        raw_adjacency: Dict[NodeId, Set[NodeId]],
        tables,
    ) -> int:
        delivered = 0
        interner = tables.interner
        index_of = interner.index_of
        node_of = interner.nodes
        neighbor_list = tables.neighbor_lists[step]
        place = self._place_fast

        if dest_mask:
            # 1. Deliveries.  The reference engine iterates a set *copy* of
            #    the destination's adjacency; perform the identical operation
            #    on the identical set object so tie order matches exactly.
            dest_neighbors = set(raw_adjacency.get(destination, ()))
            for node in dest_neighbors:
                idx = index_of(node)
                held = store.get(idx)
                if not held:
                    continue
                for link, _, _, hop_count in held:
                    emitted.append((arrival_time, hop_count + 1, step,
                                    (link, destination, arrival_time)))
                delivered += len(held)
                del store[idx]
                cap_cache.pop(idx, None)

            # 1b. First-preference purge: one AND per stored path.
            emptied: List[int] = []
            for idx, held in store.items():
                kept = [entry for entry in held if not (entry[1] & dest_mask)]
                if len(kept) != len(held):
                    cap_cache.pop(idx, None)
                    if kept:
                        store[idx] = kept
                    else:
                        emptied.append(idx)
            for idx in emptied:
                del store[idx]

        # 2. Hand-offs from a post-delivery snapshot, in first-insertion
        #    order (the reference engine's effective processing order).
        frontier: List[Tuple[int, tuple]] = []
        snapshot = [(idx, list(held))
                    for idx, held in sorted(store.items(),
                                            key=lambda item: first_slot[item[0]])]
        for idx, held in snapshot:
            neighbors = neighbor_list.get(idx)
            if not neighbors:
                continue
            for peer_idx, fresh in neighbors:
                if peer_idx == dst_idx:
                    continue
                peer = node_of[peer_idx]
                peer_bit = 1 << peer_idx
                for entry in held:
                    if not fresh and entry[2] < step:
                        # Ongoing contact, old path: the hand-off already
                        # happened in an earlier step.
                        continue
                    mask = entry[1]
                    if mask & peer_bit:
                        continue
                    new_entry = ((entry[0], peer, arrival_time),
                                 mask | peer_bit, step, entry[3] + 1)
                    delivered += place(
                        store, first_slot, cap_cache, emitted, new_entry,
                        peer_idx, dest_mask, arrival_time, step, destination,
                        frontier,
                    )

        # 3. Within-step cascade over zero-weight edges.
        while frontier:
            idx, entry = frontier.pop()
            neighbors = neighbor_list.get(idx)
            if not neighbors:
                continue
            link, mask, _, hop_count = entry
            for peer_idx, _ in neighbors:
                peer_bit = 1 << peer_idx
                if peer_idx == dst_idx or mask & peer_bit:
                    continue
                new_entry = ((link, node_of[peer_idx], arrival_time),
                             mask | peer_bit, step, hop_count + 1)
                delivered += place(
                    store, first_slot, cap_cache, emitted, new_entry,
                    peer_idx, dest_mask, arrival_time, step, destination,
                    frontier,
                )
        return delivered

    def _place_fast(
        self,
        store: Dict[int, List[tuple]],
        first_slot: Dict[int, int],
        cap_cache: Dict[int, Tuple[int, int]],
        emitted: List[Tuple[float, int, int, tuple]],
        entry: tuple,
        idx: int,
        dest_mask: int,
        arrival_time: float,
        step: int,
        destination: NodeId,
        frontier: List[Tuple[int, tuple]],
    ) -> int:
        if dest_mask >> idx & 1:  # immediate delivery (first preference)
            emitted.append((arrival_time, entry[3] + 1, step,
                            (entry[0], destination, arrival_time)))
            return 1
        held = store.get(idx)
        if held is None:
            held = store[idx] = []
            if idx not in first_slot:
                first_slot[idx] = len(first_slot)
        if len(held) < self._k:
            held.append(entry)
            frontier.append((idx, entry))
            return 0
        # At capacity: keep the k shortest by hop count.  The reference
        # engine rescans for the first index holding the maximum hop count
        # on every placement; cache that scan until the list changes.
        cached = cap_cache.get(idx)
        if cached is None:
            worst_hops = -1
            worst_index = 0
            for position, existing in enumerate(held):
                if existing[3] > worst_hops:
                    worst_hops = existing[3]
                    worst_index = position
            cached = (worst_hops, worst_index)
            cap_cache[idx] = cached
        worst_hops, worst_index = cached
        if worst_hops > entry[3]:
            held[worst_index] = entry
            cap_cache.pop(idx, None)
            frontier.append((idx, entry))
        return 0


def _materialize_hops(link: tuple) -> Tuple[Hop, ...]:
    """Expand a (parent, node, time) cons chain into a hop tuple."""
    hops: List[Hop] = []
    while link is not None:
        parent, node, time = link
        hops.append((node, time))
        link = parent
    hops.reverse()
    return tuple(hops)


# ----------------------------------------------------------------------
# module-level conveniences
# ----------------------------------------------------------------------
def _coerce_graph(trace_or_graph, delta: float) -> SpaceTimeGraph:
    if isinstance(trace_or_graph, SpaceTimeGraph):
        return trace_or_graph
    if isinstance(trace_or_graph, ContactTrace):
        return SpaceTimeGraph(trace_or_graph, delta=delta)
    raise TypeError(
        f"expected ContactTrace or SpaceTimeGraph, got {type(trace_or_graph)!r}"
    )


def enumerate_paths(
    trace_or_graph,
    source: NodeId,
    destination: NodeId,
    creation_time: float,
    k: int = DEFAULT_K,
    max_total_deliveries: Optional[int] = None,
    delta: float = 10.0,
    engine: str = "fast",
) -> EnumerationResult:
    """One-shot enumeration from a trace or a prebuilt space-time graph.

    When iterating over many messages of the same trace, build the
    :class:`SpaceTimeGraph` once and use :class:`PathEnumerator` (or
    :func:`enumerate_batch`) directly to avoid rebuilding it per message.
    """
    graph = _coerce_graph(trace_or_graph, delta)
    enumerator = PathEnumerator(graph, k=k, engine=engine)
    return enumerator.enumerate(source, destination, creation_time,
                                max_total_deliveries=max_total_deliveries)


def enumerate_batch(
    trace_or_graph,
    messages: Iterable[Tuple[NodeId, NodeId, float]],
    k: int = DEFAULT_K,
    max_total_deliveries: Optional[int] = None,
    delta: float = 10.0,
    engine: str = "fast",
) -> List[EnumerationResult]:
    """Enumerate a batch of ``(source, destination, creation_time)`` messages.

    The space-time graph and its fast-path step tables are built once and
    shared across the whole batch; results are returned in input order.
    """
    graph = _coerce_graph(trace_or_graph, delta)
    enumerator = PathEnumerator(graph, k=k, engine=engine)
    return enumerator.enumerate_batch(
        messages, max_total_deliveries=max_total_deliveries)


def epidemic_infection_times(
    graph: SpaceTimeGraph,
    source: NodeId,
    creation_time: float,
) -> Dict[NodeId, float]:
    """Earliest time each node can receive a message under epidemic forwarding.

    Implemented as a step-wise epidemic closure over the space-time graph:
    at every step, every connected component of the contact graph that
    contains an infected node becomes entirely infected at that step's vertex
    time.  The source is "infected" at the creation time itself.

    The value for a node equals the arrival time of the optimal path to that
    node, i.e. ``T(σ, x, t1) = T_Epidemic`` from the paper.
    """
    if source not in graph.nodes:
        raise ValueError(f"source {source} is not a node of the trace")
    infection: Dict[NodeId, float] = {source: creation_time}
    start_step = graph.step_of_time(creation_time)
    for step in range(start_step, graph.num_steps):
        adjacency = graph.adjacency(step)
        if not adjacency:
            continue
        if len(infection) == len(graph.nodes):
            break
        arrival_time = graph.time_of_step(step)
        for component in graph.components(step):
            if any(node in infection for node in component):
                for node in component:
                    infection.setdefault(node, arrival_time)
    return infection


def first_delivery_time(
    graph: SpaceTimeGraph,
    source: NodeId,
    destination: NodeId,
    creation_time: float,
) -> Optional[float]:
    """``T1`` — arrival time of the optimal path, or None if undeliverable.

    Cheaper than full enumeration; agrees with the first delivery of
    :meth:`PathEnumerator.enumerate` (a property exercised by the tests).
    """
    if destination not in graph.nodes:
        raise ValueError(f"destination {destination} is not a node of the trace")
    times = epidemic_infection_times(graph, source, creation_time)
    return times.get(destination)
