"""The paper's primary contribution: space-time path enumeration and the
path-explosion analysis built on top of it."""

from .enumeration import (
    DEFAULT_K,
    Delivery,
    EnumerationResult,
    PathEnumerator,
    enumerate_batch,
    enumerate_paths,
    epidemic_infection_times,
    first_delivery_time,
)
from .fastpath import NodeInterner, StepTables
from .explosion import (
    DEFAULT_EXPLOSION_THRESHOLD,
    ExplosionRecord,
    analyze_dataset,
    analyze_message,
    arrival_curve,
    random_messages,
)
from .hop_analysis import (
    HopRateSummary,
    RatioBoxStats,
    fraction_of_uphill_hops,
    hop_rate_summary,
    rate_ratios_by_hop,
    rates_by_hop,
    ratio_box_stats,
)
from .pair_types import (
    NodeClass,
    PairType,
    RateClassification,
    classify_nodes,
    classify_pair,
    group_by_pair_type,
    pair_type_of_message,
)
from .path import (
    Hop,
    Path,
    is_loop_free,
    is_time_feasible,
    is_valid_path,
    respects_first_preference,
    respects_minimal_progress,
)
from .space_time_graph import DEFAULT_DELTA, SpaceTimeGraph

__all__ = [
    "DEFAULT_K",
    "Delivery",
    "EnumerationResult",
    "PathEnumerator",
    "enumerate_batch",
    "enumerate_paths",
    "NodeInterner",
    "StepTables",
    "epidemic_infection_times",
    "first_delivery_time",
    "DEFAULT_EXPLOSION_THRESHOLD",
    "ExplosionRecord",
    "analyze_dataset",
    "analyze_message",
    "arrival_curve",
    "random_messages",
    "HopRateSummary",
    "RatioBoxStats",
    "fraction_of_uphill_hops",
    "hop_rate_summary",
    "rate_ratios_by_hop",
    "rates_by_hop",
    "ratio_box_stats",
    "NodeClass",
    "PairType",
    "RateClassification",
    "classify_nodes",
    "classify_pair",
    "group_by_pair_type",
    "pair_type_of_message",
    "Hop",
    "Path",
    "is_loop_free",
    "is_time_feasible",
    "is_valid_path",
    "respects_first_preference",
    "respects_minimal_progress",
    "DEFAULT_DELTA",
    "SpaceTimeGraph",
]
