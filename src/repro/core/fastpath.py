"""Fast-core substrate for the path-enumeration dynamic program.

The enumeration of Figure 3 spends essentially all of its time in three
inner-loop operations: loop-avoidance membership tests (``peer in
path.node_set``), the first-preference purge (``node_set & dest_neighbors``),
and path extension (``node_set | {peer}`` plus a new :class:`~repro.core.path.Path`).
On the seed implementation each of those allocates or walks a ``frozenset``.

This module provides the integer substrate that turns all three into single
machine-word operations, the standard remedy used by contact-graph /
DTN simulators:

* :class:`NodeInterner` — a dense bijection ``NodeId <-> [0, n)`` so a set of
  nodes becomes an ``int`` bitmask (node *i* ↦ bit ``1 << i``);
* :class:`StepTables` — per-timestep structures precomputed once per
  :class:`~repro.core.space_time_graph.SpaceTimeGraph`:

  - ``neighbor_lists[step][i]`` — the interned neighbours of node *i*, each
    paired with a precomputed *freshness* flag (True when the contact edge
    was not active at ``step - 1``), eliminating the per-hand-off
    ``in_contact(node, peer, step - 1)`` lookup of the seed engine;
  - ``neighbor_masks[step][i]`` — the same neighbourhood as a bitmask, used
    for the first-preference purge and for O(1) "is this node in contact
    with the destination" tests;
  - ``next_active[i][step]`` — a skip index: the first step ``>= step`` at
    which node *i* has any contact edge, so the dynamic program can jump
    over the (typically many) steps during which nothing can happen.

Ordering contract
-----------------
The fast engine must reproduce the seed engine's delivery stream *exactly*,
including the order of same-time same-hop-count ties, which in the seed
implementation is inherited from Python ``set`` iteration order.  For that
reason ``neighbor_lists`` is built by iterating the graph's original
adjacency sets, preserving their iteration order verbatim.  Do not sort
these lists.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Sequence, Tuple

from ..contacts import NodeId

__all__ = ["NodeInterner", "StepTables"]


class NodeInterner:
    """Dense, deterministic bijection between node ids and ``[0, n)`` indices.

    Indices are assigned in sorted node order, so the mapping depends only on
    the node population, never on trace or insertion order.
    """

    __slots__ = ("_nodes", "_index")

    def __init__(self, nodes: Iterable[NodeId]) -> None:
        self._nodes: Tuple[NodeId, ...] = tuple(sorted(set(nodes)))
        self._index: Dict[NodeId, int] = {n: i for i, n in enumerate(self._nodes)}

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: NodeId) -> bool:
        return node in self._index

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self._nodes)

    @property
    def nodes(self) -> Tuple[NodeId, ...]:
        """All node ids in index order."""
        return self._nodes

    def index_of(self, node: NodeId) -> int:
        """The dense index of *node* (raises ``KeyError`` for unknown nodes)."""
        return self._index[node]

    def node_at(self, index: int) -> NodeId:
        """The node id occupying *index*."""
        return self._nodes[index]

    # ------------------------------------------------------------------
    # bitmask helpers
    # ------------------------------------------------------------------
    def bit_of(self, node: NodeId) -> int:
        """The single-bit mask of *node*."""
        return 1 << self._index[node]

    def mask_of(self, nodes: Iterable[NodeId]) -> int:
        """The bitmask with one bit set per node in *nodes*."""
        mask = 0
        index = self._index
        for node in nodes:
            mask |= 1 << index[node]
        return mask

    def nodes_of(self, mask: int) -> FrozenSet[NodeId]:
        """The node set encoded by *mask* (inverse of :meth:`mask_of`)."""
        if mask < 0:
            raise ValueError("bitmask must be non-negative")
        nodes = []
        table = self._nodes
        index = 0
        while mask:
            if mask & 1:
                nodes.append(table[index])
            mask >>= 1
            index += 1
        return frozenset(nodes)


class StepTables:
    """Per-step indexes precomputed from a space-time graph's adjacency.

    Built once (lazily) per graph via
    :meth:`repro.core.space_time_graph.SpaceTimeGraph.step_tables` and shared
    by every enumeration over that graph.
    """

    __slots__ = ("interner", "neighbor_lists", "neighbor_masks",
                 "next_active", "num_steps")

    def __init__(
        self,
        interner: NodeInterner,
        neighbor_lists: List[Dict[int, List[Tuple[int, bool]]]],
        neighbor_masks: List[Dict[int, int]],
        next_active: List[Sequence[int]],
    ) -> None:
        self.interner = interner
        self.neighbor_lists = neighbor_lists
        self.neighbor_masks = neighbor_masks
        self.next_active = next_active
        self.num_steps = len(neighbor_lists)

    # ------------------------------------------------------------------
    @classmethod
    def build(cls, nodes: Iterable[NodeId],
              adjacency_by_step: Sequence[Dict[NodeId, set]]) -> "StepTables":
        """Build the tables from a per-step ``{node: set_of_peers}`` sequence.

        ``neighbor_lists`` preserves the iteration order of each adjacency
        set (see the module docstring's ordering contract).
        """
        interner = NodeInterner(nodes)
        index_of = interner._index
        num_steps = len(adjacency_by_step)
        num_nodes = len(interner)

        neighbor_lists: List[Dict[int, List[Tuple[int, bool]]]] = []
        neighbor_masks: List[Dict[int, int]] = []
        for step, adjacency in enumerate(adjacency_by_step):
            prev = adjacency_by_step[step - 1] if step > 0 else {}
            lists: Dict[int, List[Tuple[int, bool]]] = {}
            masks: Dict[int, int] = {}
            for node, peers in adjacency.items():
                prev_peers = prev.get(node, ())
                idx = index_of[node]
                entries = []
                mask = 0
                for peer in peers:  # natural set order — do not sort
                    peer_idx = index_of[peer]
                    entries.append((peer_idx, peer not in prev_peers))
                    mask |= 1 << peer_idx
                lists[idx] = entries
                masks[idx] = mask
            neighbor_lists.append(lists)
            neighbor_masks.append(masks)

        next_active: List[Sequence[int]] = []
        for idx in range(num_nodes):
            column = [num_steps] * (num_steps + 1)
            upcoming = num_steps
            for step in range(num_steps - 1, -1, -1):
                if idx in neighbor_masks[step]:
                    upcoming = step
                column[step] = upcoming
            next_active.append(column)

        return cls(interner, neighbor_lists, neighbor_masks, next_active)

    # ------------------------------------------------------------------
    def first_active_step(self, index: int, step: int) -> int:
        """First step ``>= step`` at which node *index* has a contact edge.

        Returns ``num_steps`` when the node has no further contacts.
        """
        if step >= self.num_steps:
            return self.num_steps
        return self.next_active[index][step]

    def dest_mask(self, index: int, step: int) -> int:
        """Bitmask of the nodes in contact with node *index* at *step*."""
        return self.neighbor_masks[step].get(index, 0)
