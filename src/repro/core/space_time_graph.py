"""Space-time graph representation of a contact trace.

Section 4.1 of the paper converts the sequence of node contacts into a
*space-time graph* (following Merugu, Ammar and Zegura [13]): time is
discretised in increments of Δ (10 s in all the paper's experiments), a
vertex is a pair ``(node, T)`` with ``T = cΔ``, and there are two kinds of
edges:

* zero-weight *contact* edges ``(x_i, T) → (x_j, T)`` whenever ``x_i`` was in
  contact with ``x_j`` at any time during ``[T − Δ, T)``, and
* unit-weight *waiting* edges ``(x_i, T) → (x_i, T + Δ)`` for every node.

The class below stores the graph implicitly as one contact-adjacency map per
timestep — that is all the path-enumeration dynamic program needs — and can
also materialise the explicit :class:`networkx.DiGraph` for interoperability
and for the Figure 2 illustration.

Step indexing convention: step ``s`` (0-based) covers the half-open interval
``[sΔ, (s+1)Δ)`` and corresponds to the paper's vertex time ``T = (s+1)Δ``.
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

import networkx as nx

from ..contacts import Contact, ContactTrace, NodeId
from .fastpath import NodeInterner, StepTables

__all__ = ["SpaceTimeGraph", "DEFAULT_DELTA"]

#: The paper uses Δ = 10 seconds throughout.
DEFAULT_DELTA = 10.0

Adjacency = Dict[NodeId, Set[NodeId]]


class SpaceTimeGraph:
    """Discretised space-time view of a :class:`ContactTrace`.

    Parameters
    ----------
    trace:
        The contact trace to discretise.
    delta:
        Timestep length Δ in seconds (default 10 s, as in the paper).
    """

    def __init__(self, trace: ContactTrace, delta: float = DEFAULT_DELTA) -> None:
        if delta <= 0:
            raise ValueError("delta must be positive")
        self._trace = trace
        self._delta = float(delta)
        self._num_steps = max(1, int(math.ceil(trace.duration / delta)))
        self._adjacency: List[Adjacency] = [dict() for _ in range(self._num_steps)]
        self._step_tables: Optional[StepTables] = None
        self._build()

    # ------------------------------------------------------------------
    def _build(self) -> None:
        for contact in self._trace:
            first = int(contact.start // self._delta)
            if contact.duration == 0:
                last = first
            else:
                # A contact active anywhere inside [sΔ, (s+1)Δ) creates a
                # contact edge at step s.  The contact interval is half-open,
                # [start, end), so an end instant that falls exactly on a
                # step edge does not reach into the following step: the last
                # step is floor(end / Δ), stepped back by one when end is an
                # exact multiple of Δ.  End times are taken at face value —
                # an end one ulp past a boundary extends into the next step
                # (the seed's 1e-9 epsilon instead silently truncated any
                # contact ending within a nanosecond past a boundary).
                quotient, remainder = divmod(contact.end, self._delta)
                last = int(quotient)
                if remainder == 0.0:
                    last -= 1
            last = min(last, self._num_steps - 1)
            first = min(first, self._num_steps - 1)
            for step in range(first, last + 1):
                self._add_edge(step, contact.a, contact.b)

    def _add_edge(self, step: int, a: NodeId, b: NodeId) -> None:
        adj = self._adjacency[step]
        adj.setdefault(a, set()).add(b)
        adj.setdefault(b, set()).add(a)

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def trace(self) -> ContactTrace:
        return self._trace

    @property
    def delta(self) -> float:
        """Timestep length Δ in seconds."""
        return self._delta

    @property
    def num_steps(self) -> int:
        """Number of timesteps covering the trace window."""
        return self._num_steps

    @property
    def nodes(self) -> FrozenSet[NodeId]:
        return self._trace.nodes

    @property
    def interner(self) -> NodeInterner:
        """The dense node-id interner shared by the fast-path structures."""
        return self.step_tables().interner

    def step_tables(self) -> StepTables:
        """Per-step fast-path indexes (interned neighbour lists, freshness
        flags, neighbour bitmasks, and the next-active-step skip index).

        Built lazily on first use and cached for the lifetime of the graph,
        so the cost is paid once per trace rather than once per message.
        """
        if self._step_tables is None:
            self._step_tables = StepTables.build(self.nodes, self._adjacency)
        return self._step_tables

    def step_of_time(self, t: float) -> int:
        """The step whose interval ``[sΔ, (s+1)Δ)`` contains instant *t*."""
        if t < 0:
            raise ValueError(f"negative time {t}")
        step = int(t // self._delta)
        return min(step, self._num_steps - 1)

    def time_of_step(self, step: int) -> float:
        """The paper's vertex time ``T = (step + 1)Δ`` for a step index."""
        self._check_step(step)
        return (step + 1) * self._delta

    def _check_step(self, step: int) -> None:
        if not 0 <= step < self._num_steps:
            raise IndexError(f"step {step} out of range [0, {self._num_steps})")

    # ------------------------------------------------------------------
    # adjacency queries
    # ------------------------------------------------------------------
    def adjacency(self, step: int) -> Adjacency:
        """The contact adjacency (node → set of peers) at *step*."""
        self._check_step(step)
        return self._adjacency[step]

    def neighbors(self, node: NodeId, step: int) -> FrozenSet[NodeId]:
        """Nodes in contact with *node* during *step*."""
        self._check_step(step)
        return frozenset(self._adjacency[step].get(node, frozenset()))

    def in_contact(self, a: NodeId, b: NodeId, step: int) -> bool:
        """True if nodes *a* and *b* share a contact edge at *step*."""
        self._check_step(step)
        return b in self._adjacency[step].get(a, ())

    def degree(self, node: NodeId, step: int) -> int:
        """Number of contact edges incident to *node* at *step*."""
        return len(self.neighbors(node, step))

    def active_nodes(self, step: int) -> FrozenSet[NodeId]:
        """Nodes with at least one contact edge at *step*."""
        self._check_step(step)
        return frozenset(self._adjacency[step].keys())

    def reachable_within_step(self, node: NodeId, step: int) -> FrozenSet[NodeId]:
        """All nodes reachable from *node* via zero-weight edges at *step*.

        This is the connected component of *node* in the step's contact graph
        (excluding *node* itself).  It is the set of nodes a message held by
        *node* could reach "instantaneously" within the timestep under
        epidemic forwarding.
        """
        self._check_step(step)
        adj = self._adjacency[step]
        if node not in adj:
            return frozenset()
        seen: Set[NodeId] = {node}
        frontier = [node]
        while frontier:
            current = frontier.pop()
            for peer in adj.get(current, ()):  # pragma: no branch
                if peer not in seen:
                    seen.add(peer)
                    frontier.append(peer)
        seen.discard(node)
        return frozenset(seen)

    def components(self, step: int) -> List[FrozenSet[NodeId]]:
        """Connected components of the contact graph at *step*."""
        self._check_step(step)
        adj = self._adjacency[step]
        remaining = set(adj.keys())
        components: List[FrozenSet[NodeId]] = []
        while remaining:
            root = next(iter(remaining))
            component = {root} | set(self.reachable_within_step(root, step))
            components.append(frozenset(component))
            remaining -= component
        return components

    def first_contact_step(self, a: NodeId, b: NodeId, start_step: int = 0) -> Optional[int]:
        """First step ``>= start_step`` at which *a* and *b* are in contact."""
        for step in range(max(0, start_step), self._num_steps):
            if self.in_contact(a, b, step):
                return step
        return None

    def contact_steps(self, node: NodeId) -> List[int]:
        """All steps at which *node* has at least one contact edge."""
        return [s for s in range(self._num_steps) if self._adjacency[s].get(node)]

    def total_contact_edges(self) -> int:
        """Total number of (undirected) contact edges over all steps."""
        return sum(
            sum(len(peers) for peers in adj.values()) // 2
            for adj in self._adjacency
        )

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def to_networkx(self, start_step: int = 0, end_step: Optional[int] = None) -> nx.DiGraph:
        """Materialise the explicit space-time digraph.

        Vertices are ``(node, T)`` pairs where ``T`` is the paper's vertex
        time for the step.  Contact edges (both directions) carry
        ``weight=0``; waiting edges carry ``weight=1``.  The graph can grow
        large (``num_nodes * num_steps`` vertices); restrict the step range
        for visualisation.
        """
        end = self._num_steps if end_step is None else min(end_step, self._num_steps)
        if not 0 <= start_step < end:
            raise ValueError(f"invalid step range [{start_step}, {end})")
        graph = nx.DiGraph()
        nodes = sorted(self.nodes)
        for step in range(start_step, end):
            t = self.time_of_step(step)
            for node in nodes:
                graph.add_node((node, t))
            for a, peers in self._adjacency[step].items():
                for b in peers:
                    graph.add_edge((a, t), (b, t), weight=0)
            if step + 1 < end:
                t_next = self.time_of_step(step + 1)
                for node in nodes:
                    graph.add_edge((node, t), (node, t_next), weight=1)
        return graph

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<SpaceTimeGraph: {len(self.nodes)} nodes, {self._num_steps} steps, "
            f"delta={self._delta}s>"
        )
