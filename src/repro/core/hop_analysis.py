"""Hop-by-hop contact-rate analysis of near-optimal paths.

Section 6.2.2 of the paper tests the hypothesis that successful forwarding
works by climbing the contact-rate gradient: hops along near-optimal paths
should tend to go from lower-rate nodes to higher-rate nodes.  Two views are
reported:

* **Figure 14** — the mean contact rate of the node occupying each hop
  position, aggregated over all near-optimal paths, with 99 % confidence
  intervals; the mean rises over the first few hops.
* **Figure 15** — box-and-whisker summaries of the rate *ratios*
  ``r = λ_j / λ_i`` between consecutive nodes on a path; early-hop ratios are
  predominantly above 1.

This module computes both from a collection of :class:`~repro.core.path.Path`
objects and a per-node rate map.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..contacts import NodeId
from .path import Path

__all__ = [
    "HopRateSummary",
    "RatioBoxStats",
    "rates_by_hop",
    "hop_rate_summary",
    "rate_ratios_by_hop",
    "ratio_box_stats",
    "fraction_of_uphill_hops",
]

#: z-value for a 99% two-sided normal confidence interval, as used in Fig. 14.
_Z_99 = 2.5758293035489004


@dataclass(frozen=True)
class HopRateSummary:
    """Mean contact rate at one hop position with its confidence interval."""

    hop: int
    count: int
    mean_rate: float
    ci_half_width: float

    @property
    def ci_low(self) -> float:
        return self.mean_rate - self.ci_half_width

    @property
    def ci_high(self) -> float:
        return self.mean_rate + self.ci_half_width


@dataclass(frozen=True)
class RatioBoxStats:
    """Box-plot statistics of consecutive-hop rate ratios at one transition."""

    transition: str
    count: int
    median: float
    q1: float
    q3: float
    whisker_low: float
    whisker_high: float

    @property
    def fraction_above_one(self) -> float:
        """Set by the builder; kept as a property-compatible field."""
        return getattr(self, "_fraction_above_one", float("nan"))


def rates_by_hop(
    paths: Iterable[Path],
    rates: Mapping[NodeId, float],
    include_endpoints: bool = True,
) -> Dict[int, List[float]]:
    """Collect the contact rates of the node at each hop index.

    Hop index 0 is the source; index ``i`` is the node holding the message
    after ``i`` hand-offs.  When *include_endpoints* is False the source and
    the final (destination) hop are skipped, leaving only intermediate
    relays.
    """
    per_hop: Dict[int, List[float]] = {}
    for path in paths:
        nodes = path.nodes
        last = len(nodes) - 1
        for index, node in enumerate(nodes):
            if not include_endpoints and (index == 0 or index == last):
                continue
            if node not in rates:
                raise KeyError(f"no contact rate known for node {node}")
            per_hop.setdefault(index, []).append(rates[node])
    return per_hop


def hop_rate_summary(
    paths: Iterable[Path],
    rates: Mapping[NodeId, float],
    max_hop: Optional[int] = None,
    include_endpoints: bool = True,
) -> List[HopRateSummary]:
    """Mean rate and 99% CI per hop index (the Figure 14 series)."""
    per_hop = rates_by_hop(paths, rates, include_endpoints=include_endpoints)
    summaries: List[HopRateSummary] = []
    for hop in sorted(per_hop):
        if max_hop is not None and hop > max_hop:
            break
        samples = np.array(per_hop[hop], dtype=float)
        mean = float(samples.mean())
        if samples.size > 1:
            half_width = _Z_99 * float(samples.std(ddof=1)) / math.sqrt(samples.size)
        else:
            half_width = 0.0
        summaries.append(HopRateSummary(hop=hop, count=int(samples.size),
                                        mean_rate=mean, ci_half_width=half_width))
    return summaries


def rate_ratios_by_hop(
    paths: Iterable[Path],
    rates: Mapping[NodeId, float],
) -> Dict[int, List[float]]:
    """Rate ratios ``λ_next / λ_current`` for each hop transition.

    Transition index ``i`` covers the hand-off from hop ``i`` to hop
    ``i + 1`` (the paper labels these "1/0", "2/1", ...).  Hops whose
    upstream node has zero measured rate are skipped (the ratio is
    undefined); such hops are rare and correspond to sources that never had
    any other contact.
    """
    ratios: Dict[int, List[float]] = {}
    for path in paths:
        nodes = path.nodes
        for index in range(len(nodes) - 1):
            lam_i = rates.get(nodes[index])
            lam_j = rates.get(nodes[index + 1])
            if lam_i is None or lam_j is None:
                raise KeyError("missing contact rate for a path node")
            if lam_i <= 0:
                continue
            ratios.setdefault(index, []).append(lam_j / lam_i)
    return ratios


def ratio_box_stats(
    paths: Iterable[Path],
    rates: Mapping[NodeId, float],
    max_transitions: Optional[int] = None,
) -> List[RatioBoxStats]:
    """Box-plot summaries of the consecutive-hop rate ratios (Figure 15)."""
    ratios = rate_ratios_by_hop(paths, rates)
    stats: List[RatioBoxStats] = []
    for index in sorted(ratios):
        if max_transitions is not None and index >= max_transitions:
            break
        samples = np.array(ratios[index], dtype=float)
        q1, median, q3 = (float(q) for q in np.percentile(samples, [25, 50, 75]))
        iqr = q3 - q1
        low = float(samples[samples >= q1 - 1.5 * iqr].min())
        high = float(samples[samples <= q3 + 1.5 * iqr].max())
        entry = RatioBoxStats(
            transition=f"{index + 1}/{index}",
            count=int(samples.size),
            median=median,
            q1=q1,
            q3=q3,
            whisker_low=low,
            whisker_high=high,
        )
        object.__setattr__(entry, "_fraction_above_one", float((samples > 1.0).mean()))
        stats.append(entry)
    return stats


def fraction_of_uphill_hops(
    paths: Iterable[Path],
    rates: Mapping[NodeId, float],
    first_n_transitions: int = 3,
) -> float:
    """Fraction of early hand-offs that go to a strictly higher-rate node.

    A scalar summary of the paper's "hops along successful paths tend to be
    from lower-rate nodes to higher-rate nodes" claim, convenient for tests
    and for the EXPERIMENTS.md shape checks.
    """
    ratios = rate_ratios_by_hop(paths, rates)
    samples: List[float] = []
    for index in range(first_n_transitions):
        samples.extend(ratios.get(index, []))
    if not samples:
        return float("nan")
    arr = np.array(samples, dtype=float)
    return float((arr > 1.0).mean())
