"""Registry of synthetic stand-ins for the paper's datasets.

The paper analyses four 3-hour windows of iMote contact traces — Infocom
2006 (9AM–12PM and 3PM–6PM on 25 April 2006) and CoNExT 2006 (9AM–12PM and
3PM–6PM on 4 December 2006) — plus a replication on Infocom 2005.  Those
CRAWDAD traces cannot be redistributed, so this module defines seeded
synthetic configurations with matching population sizes, window lengths,
stationary-node counts, and contact-rate heterogeneity (see DESIGN.md §2 for
the substitution rationale).

Each :class:`DatasetSpec` is deterministic: the same key and scale always
produce the same trace, so every figure in EXPERIMENTS.md is reproducible.
The ``scale`` argument shrinks the population (and proportionally the mean
contact count stays per-node) so tests and benchmarks can run quickly while
keeping the trace's statistical character; ``scale=1.0`` is the
paper-faithful size.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from .contacts import ContactTrace
from .synth import ConferenceTraceGenerator, TaperedProfile

__all__ = [
    "DatasetSpec",
    "PAPER_DATASET_KEYS",
    "dataset_spec",
    "load_dataset",
    "paper_datasets",
    "infocom06_9_12",
    "infocom06_3_6",
    "conext06_9_12",
    "conext06_3_6",
    "infocom05",
]


@dataclass(frozen=True)
class DatasetSpec:
    """A named, seeded synthetic dataset configuration."""

    key: str
    description: str
    num_nodes: int
    num_stationary: int
    duration: float
    mean_contacts_per_node: float
    seed: int
    afternoon_dropoff: bool = False

    def scaled_num_nodes(self, scale: float = 1.0) -> int:
        """The population size a given *scale* produces (floor of 10).

        Exposed separately from :meth:`generator` so scenario listings can
        report node counts without building a trace.
        """
        if not 0 < scale <= 1.0:
            raise ValueError("scale must lie in (0, 1]")
        return max(10, int(round(self.num_nodes * scale)))

    def generator(self, scale: float = 1.0,
                  contact_scale: float = 1.0) -> ConferenceTraceGenerator:
        """Build the trace generator, optionally scaled down.

        ``scale`` shrinks the population while keeping each node's contact
        rate (a per-person property) unchanged; this makes the scaled trace
        relatively denser per pair.  ``contact_scale`` additionally scales the
        per-node mean contact count — passing ``contact_scale=scale``
        preserves the *per-pair* contact intensity of the full-size dataset,
        which keeps delivery delays and success rates closer to paper scale
        and is what the benchmark harness uses.
        """
        if not 0 < contact_scale <= 1.0:
            raise ValueError("contact_scale must lie in (0, 1]")
        num_nodes = self.scaled_num_nodes(scale)
        num_stationary = min(num_nodes // 4,
                             int(round(self.num_stationary * scale)))
        profile = None
        if self.afternoon_dropoff:
            # Activity tapers over the final 30 minutes of the window, the
            # 5:30–6:00 pm drop-off visible in the paper's Figure 1(b)/(d).
            profile = TaperedProfile(window_end=self.duration,
                                     taper_start=self.duration - 1800.0,
                                     final_level=0.35)
        return ConferenceTraceGenerator(
            num_nodes=num_nodes,
            num_stationary=num_stationary,
            duration=self.duration,
            mean_contacts_per_node=max(5.0, self.mean_contacts_per_node * contact_scale),
            profile=profile,
        )

    def generate(self, scale: float = 1.0, seed: Optional[int] = None,
                 contact_scale: float = 1.0) -> ContactTrace:
        """Generate the trace (deterministic for a given key and scale)."""
        generator = self.generator(scale=scale, contact_scale=contact_scale)
        suffix = "" if scale == 1.0 and contact_scale == 1.0 else f"-x{scale:g}"
        return generator.generate(seed=self.seed if seed is None else seed,
                                  name=f"{self.key}{suffix}")


_REGISTRY: Dict[str, DatasetSpec] = {
    "infocom06-9-12": DatasetSpec(
        key="infocom06-9-12",
        description="Infocom 2006 stand-in, 25 April, 9AM-12PM window",
        num_nodes=98, num_stationary=20, duration=3 * 3600.0,
        mean_contacts_per_node=200.0, seed=20060425,
    ),
    "infocom06-3-6": DatasetSpec(
        key="infocom06-3-6",
        description="Infocom 2006 stand-in, 25 April, 3PM-6PM window (late drop-off)",
        num_nodes=98, num_stationary=20, duration=3 * 3600.0,
        mean_contacts_per_node=185.0, seed=20060426, afternoon_dropoff=True,
    ),
    "conext06-9-12": DatasetSpec(
        key="conext06-9-12",
        description="CoNExT 2006 stand-in, 4 December, 9AM-12PM window",
        num_nodes=98, num_stationary=20, duration=3 * 3600.0,
        mean_contacts_per_node=110.0, seed=20061204,
    ),
    "conext06-3-6": DatasetSpec(
        key="conext06-3-6",
        description="CoNExT 2006 stand-in, 4 December, 3PM-6PM window (late drop-off)",
        num_nodes=98, num_stationary=20, duration=3 * 3600.0,
        mean_contacts_per_node=100.0, seed=20061205, afternoon_dropoff=True,
    ),
    "infocom05": DatasetSpec(
        key="infocom05",
        description="Infocom 2005 stand-in used for the paper's replication check",
        num_nodes=41, num_stationary=0, duration=3 * 3600.0,
        mean_contacts_per_node=90.0, seed=20050307,
    ),
}

#: The four datasets the paper's figures are based on, in figure order.
PAPER_DATASET_KEYS: Tuple[str, ...] = (
    "infocom06-9-12",
    "infocom06-3-6",
    "conext06-9-12",
    "conext06-3-6",
)


def dataset_spec(key: str) -> DatasetSpec:
    """Look up a dataset specification by key."""
    try:
        return _REGISTRY[key]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown dataset {key!r}; known datasets: {known}") from None


def load_dataset(key: str, scale: float = 1.0, seed: Optional[int] = None,
                 contact_scale: float = 1.0) -> ContactTrace:
    """Generate the named dataset (optionally scaled down).

    See :meth:`DatasetSpec.generator` for the meaning of *scale* (population)
    and *contact_scale* (per-node contact volume).
    """
    return dataset_spec(key).generate(scale=scale, seed=seed,
                                      contact_scale=contact_scale)


def paper_datasets(scale: float = 1.0) -> Dict[str, ContactTrace]:
    """All four paper windows, keyed by dataset key."""
    return {key: load_dataset(key, scale=scale) for key in PAPER_DATASET_KEYS}


def infocom06_9_12(scale: float = 1.0) -> ContactTrace:
    """The Infocom 2006 9AM-12PM stand-in (the paper's primary dataset)."""
    return load_dataset("infocom06-9-12", scale=scale)


def infocom06_3_6(scale: float = 1.0) -> ContactTrace:
    """The Infocom 2006 3PM-6PM stand-in."""
    return load_dataset("infocom06-3-6", scale=scale)


def conext06_9_12(scale: float = 1.0) -> ContactTrace:
    """The CoNExT 2006 9AM-12PM stand-in."""
    return load_dataset("conext06-9-12", scale=scale)


def conext06_3_6(scale: float = 1.0) -> ContactTrace:
    """The CoNExT 2006 3PM-6PM stand-in."""
    return load_dataset("conext06-3-6", scale=scale)


def infocom05(scale: float = 1.0) -> ContactTrace:
    """The Infocom 2005 stand-in used for replication."""
    return load_dataset("infocom05", scale=scale)
