"""Cross-module integration tests.

These exercise the full pipeline the paper itself follows — dataset →
space-time graph → path enumeration → explosion analysis → forwarding
simulation — and check that the independently implemented pieces agree where
the paper says they must (e.g. the optimal enumerated path is what epidemic
forwarding achieves).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import run_forwarding_study, run_path_explosion_study
from repro.core import (
    PathEnumerator,
    SpaceTimeGraph,
    classify_nodes,
    first_delivery_time,
    fraction_of_uphill_hops,
    random_messages,
)
from repro.datasets import infocom06_9_12
from repro.forwarding import (
    EpidemicForwarding,
    Message,
    messages_from_tuples,
    simulate,
)


@pytest.fixture(scope="module")
def trace():
    """A scaled-down Infocom'06 stand-in shared by the integration tests."""
    return infocom06_9_12(scale=0.2)


@pytest.fixture(scope="module")
def graph(trace):
    return SpaceTimeGraph(trace, delta=10.0)


class TestEnumerationVsEpidemicSimulation:
    def test_epidemic_simulator_agrees_with_enumerated_optimum(self, trace, graph):
        """T(σ, δ, t1) = T_Epidemic(σ, δ, t1): the enumerated optimal path is
        a lower bound (up to Δ) on the event-driven simulator's epidemic
        delay, and the two agree closely for the bulk of messages.

        The space-time graph pools each Δ bin, so it can chain contacts that
        the continuous-time simulator could not (a contact that ended earlier
        in the same bin); the enumerated optimum is therefore an optimistic
        bound rather than an exact match."""
        delta = graph.delta
        triples = random_messages(trace, 12, seed=21)
        messages = messages_from_tuples(triples)
        result = simulate(trace, EpidemicForwarding(), messages)
        gaps = []
        for message, outcome in zip(messages, result.outcomes):
            optimal = first_delivery_time(graph, message.source,
                                          message.destination,
                                          message.creation_time)
            if outcome.delivered:
                # The simulator's delivery certifies a real path, so the
                # pooled-graph optimum cannot be later than it (plus one bin).
                assert optimal is not None
                enumerated_delay = optimal - message.creation_time
                assert enumerated_delay <= outcome.delay + delta + 1e-9
                gaps.append(outcome.delay - enumerated_delay)
        assert gaps, "no delivered messages in the sample"
        # For the bulk of messages the two substrates agree within a few bins.
        within = sum(1 for g in gaps if abs(g) <= 3 * delta)
        assert within >= len(gaps) // 2

    def test_enumerator_first_delivery_equals_fast_path(self, trace, graph):
        enumerator = PathEnumerator(graph, k=10)
        for source, destination, t1 in random_messages(trace, 8, seed=22):
            fast = first_delivery_time(graph, source, destination, t1)
            full = enumerator.enumerate(source, destination, t1,
                                        max_total_deliveries=1)
            if fast is None:
                assert not full.delivered
            else:
                assert full.deliveries[0].time == pytest.approx(fast)


class TestPathExplosionOnPaperScaleData:
    def test_majority_of_delivered_messages_explode(self, trace):
        records = run_path_explosion_study(trace, num_messages=20,
                                           n_explosion=100, seed=30)
        delivered = [r for r in records if r.delivered]
        exploded = [r for r in delivered if r.exploded]
        assert delivered
        # The paper: path explosion occurs for the vast majority of messages.
        assert len(exploded) >= 0.6 * len(delivered)

    def test_time_to_explosion_usually_much_smaller_than_optimal_duration(self, trace):
        records = run_path_explosion_study(trace, num_messages=20,
                                           n_explosion=100, seed=31)
        exploded = [r for r in records if r.exploded]
        assert exploded
        te_median = float(np.median([r.time_to_explosion for r in exploded]))
        t1_max = max(r.optimal_duration for r in exploded)
        # Figure 4's qualitative shape: the explosion happens quickly once the
        # first path arrives, even when some optimal paths take a long time.
        assert te_median <= t1_max

    def test_low_rate_sources_hand_off_uphill(self, trace):
        """Figure 15 / Section 6.2.2: a message originating at a low-rate
        ('out') node escapes by climbing the contact-rate gradient — its
        first hand-off is overwhelmingly to a higher-rate node."""
        classification = classify_nodes(trace)
        from repro.core import NodeClass

        out_nodes = classification.nodes_in_class(NodeClass.OUT)
        in_nodes = classification.nodes_in_class(NodeClass.IN)
        rng_messages = [(out_nodes[i % len(out_nodes)],
                         in_nodes[i % len(in_nodes)],
                         200.0 * i) for i in range(8)]
        records = run_path_explosion_study(trace, n_explosion=50, seed=32,
                                           keep_paths=True,
                                           messages=rng_messages)
        paths = [p for r in records for p in r.paths if p.hop_count >= 1]
        assert paths
        uphill = fraction_of_uphill_hops(paths, trace.contact_rates(),
                                         first_n_transitions=1)
        assert uphill > 0.6


class TestForwardingComparisonEndToEnd:
    def test_epidemic_bounds_all_algorithms(self, trace):
        comparison = run_forwarding_study(trace, message_rate=0.02,
                                          num_runs=1, seed=40)
        summaries = comparison.summaries()
        epidemic = summaries["Epidemic"]
        for name, summary in summaries.items():
            assert summary.success_rate <= epidemic.success_rate + 1e-9
        assert epidemic.success_rate > 0.3

    def test_algorithms_show_similar_success_rates(self, trace):
        """The paper's headline forwarding result: algorithm choice has a
        modest effect compared with the gap to undeliverable messages."""
        comparison = run_forwarding_study(trace, message_rate=0.02,
                                          num_runs=1, seed=41)
        summaries = comparison.summaries()
        rates = {name: s.success_rate for name, s in summaries.items()
                 if name != "Epidemic"}
        # All practical algorithms deliver a substantial fraction of messages.
        assert min(rates.values()) > 0.15

    def test_pair_type_dominates_performance(self, trace):
        comparison = run_forwarding_study(trace,
                                          algorithms=[EpidemicForwarding()],
                                          message_rate=0.03, num_runs=1, seed=42)
        by_type = comparison.pair_type_summaries()["Epidemic"]
        from repro.core import PairType

        in_in = by_type[PairType.IN_IN]
        out_out = by_type[PairType.OUT_OUT]
        if in_in.num_messages >= 5 and out_out.num_messages >= 5:
            # Figure 13: in-in traffic is delivered more reliably than out-out.
            assert in_in.success_rate >= out_out.success_rate


class TestClassificationConsistency:
    def test_median_split_is_balanced_on_dataset(self, trace):
        classification = classify_nodes(trace)
        from repro.core import NodeClass

        num_in = len(classification.nodes_in_class(NodeClass.IN))
        num_out = len(classification.nodes_in_class(NodeClass.OUT))
        assert abs(num_in - num_out) <= 2
