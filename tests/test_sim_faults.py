"""The fault-injection layer: lossy/latency channels and node churn.

Three guarantees are pinned here.  First, *null faults change nothing*: a
``ChannelSpec`` with zero loss/delay/jitter (and a null ``ChurnSpec``)
leaves the DES engine delivery-stream-identical to the trace-driven
simulator on every paper stand-in — the fault layer is provably dormant
when disabled.  Second, *faults are seeded environment properties*: the
loss draws and crash schedules derive from the scenario's master seed, so
serial, parallel and resumed executions of a lossy grid agree result for
result.  Third, the *mechanics* are exact on hand-built traces: delay
shifts arrivals, loss consumes bytes and retransmits with capped
exponential backoff only while the contact lasts, and a crash wipes the
node's buffer and truncates its open contacts.
"""

from __future__ import annotations

import pytest

from repro.contacts import Contact, ContactTrace
from repro.datasets import PAPER_DATASET_KEYS, load_dataset
from repro.forwarding import ForwardingSimulator, Message, PoissonMessageWorkload
from repro.forwarding.algorithms import algorithm_by_name
from repro.sim import (
    ChannelSpec,
    ChurnSpec,
    DesSimulator,
    ResourceConstraints,
)

_SCALE = 0.2
_RATE = 0.01


def _assert_results_equal(reference, candidate, context=""):
    assert candidate.algorithm == reference.algorithm, context
    assert len(candidate.outcomes) == len(reference.outcomes), context
    for position, (expected, actual) in enumerate(
            zip(reference.outcomes, candidate.outcomes)):
        where = f"{context} message {expected.message.id} (#{position})"
        assert actual.message == expected.message, where
        assert actual.delivered == expected.delivered, where
        assert actual.delivery_time == expected.delivery_time, where
        assert actual.hop_count == expected.hop_count, where
    assert candidate.copies_sent == reference.copies_sent, context


def _two_node_trace(*windows):
    contacts = [Contact(start=start, end=end, a="a", b="b")
                for start, end in windows]
    return ContactTrace(contacts, name="two-node")


def _message(creation_time=0.0, size=1.0, ttl=None, id="m1"):
    return Message(id=id, source="a", destination="b",
                   creation_time=creation_time, size=size, ttl=ttl)


# ----------------------------------------------------------------------
# null faults are exactly no faults
# ----------------------------------------------------------------------
class TestNullFaultEquivalence:
    @pytest.mark.parametrize("dataset_key", PAPER_DATASET_KEYS)
    def test_zero_channel_matches_trace_simulator(self, dataset_key):
        """loss=0, delay=0, jitter=0 is delivery-stream-identical to the
        engine without any channel on all four paper stand-ins."""
        trace = load_dataset(dataset_key, scale=_SCALE, contact_scale=_SCALE)
        messages = list(PoissonMessageWorkload(rate=_RATE)
                        .generate(trace, seed=11))
        assert messages
        constraints = ResourceConstraints(
            channel=ChannelSpec(loss=0.0, delay=0.0, jitter=0.0),
            churn=ChurnSpec(crash_rate=0.0))
        reference = ForwardingSimulator(
            trace, algorithm_by_name("Epidemic")).run(messages)
        candidate = DesSimulator(trace, algorithm_by_name("Epidemic"),
                                 constraints=constraints,
                                 seed=11).run(messages)
        _assert_results_equal(reference, candidate, context=dataset_key)

    def test_null_specs_leave_constraints_unconstrained(self):
        constraints = ResourceConstraints(
            channel=ChannelSpec(), churn=ChurnSpec())
        assert constraints.channel.is_null
        assert constraints.churn.is_null
        assert constraints.active_channel is None
        assert constraints.active_churn is None
        assert constraints.is_unconstrained

    def test_active_specs_constrain(self):
        assert not ResourceConstraints(
            channel=ChannelSpec(loss=0.1)).is_unconstrained
        assert not ResourceConstraints(
            churn=ChurnSpec(crash_rate=0.001)).is_unconstrained

    def test_to_dict_omits_null_fault_fields(self):
        """Pre-fault serializations (golden fixtures, stored records) keep
        their byte-exact shape when no fault specs are set."""
        payload = ResourceConstraints(ttl=900.0).to_dict()
        assert "channel" not in payload and "churn" not in payload
        rebuilt = ResourceConstraints.from_dict(payload)
        assert rebuilt.channel is None and rebuilt.churn is None

    def test_fault_specs_round_trip(self):
        constraints = ResourceConstraints(
            channel=ChannelSpec(loss=0.25, delay=1.5, jitter=0.5,
                                retx_limit=3),
            churn=ChurnSpec(crash_rate=0.001, mean_downtime=120.0))
        rebuilt = ResourceConstraints.from_dict(constraints.to_dict())
        assert rebuilt == constraints


# ----------------------------------------------------------------------
# seeded determinism
# ----------------------------------------------------------------------
class TestFaultDeterminism:
    def _run(self, seed, loss=0.3, crash_rate=0.0005):
        trace = load_dataset("infocom05", scale=_SCALE, contact_scale=_SCALE)
        messages = list(PoissonMessageWorkload(rate=_RATE)
                        .generate(trace, seed=seed))
        constraints = ResourceConstraints(
            channel=ChannelSpec(loss=loss),
            churn=ChurnSpec(crash_rate=crash_rate))
        return DesSimulator(trace, algorithm_by_name("Epidemic"),
                            constraints=constraints, seed=seed).run(messages)

    def test_same_seed_same_faults(self):
        first, second = self._run(7), self._run(7)
        _assert_results_equal(first, second, context="same seed")
        assert first.stats.as_dict() == second.stats.as_dict()
        assert first.stats.lost_transfers > 0

    def test_different_seed_different_faults(self):
        first, other = self._run(7), self._run(8)
        assert (first.stats.lost_transfers, first.stats.node_crashes) != \
            (other.stats.lost_transfers, other.stats.node_crashes) or \
            [o.delivered for o in first.outcomes] != \
            [o.delivered for o in other.outcomes]

    def test_lossy_grid_serial_parallel_resumed_agree(self, tmp_path):
        """The same lossy jobs decode identically whether simulated
        serially, over the pool, or served back from the store."""
        from repro.exp import ExperimentSpec, run_experiment
        from repro.scenario.traces import DatasetTraceSpec
        from repro.sim.scenarios import Scenario

        scenario = Scenario(
            name="lossy-determinism",
            description="lossy channel determinism probe",
            trace=DatasetTraceSpec(key="infocom05", scale=_SCALE,
                                   contact_scale=_SCALE),
            workload=PoissonMessageWorkload(rate=_RATE),
            constraints=ResourceConstraints(
                channel=ChannelSpec(loss=0.3, delay=1.0, jitter=0.5),
                churn=ChurnSpec(crash_rate=0.0005)),
            algorithms=("Epidemic",))
        spec = ExperimentSpec(name="lossy-determinism",
                              scenarios=(scenario,),
                              protocols=("Epidemic", "Direct Delivery"),
                              seeds=(7, 8))
        serial = run_experiment(spec)
        parallel = run_experiment(spec, parallel=True, n_workers=2)
        store = str(tmp_path / "results")
        run_experiment(spec, store=store)
        resumed = run_experiment(spec, store=store)
        assert resumed.num_executed == 0 and resumed.num_reused == 4
        assert serial.outcome.results == parallel.outcome.results
        assert serial.outcome.results == resumed.outcome.results
        stats = next(iter(serial.outcome.results.values())).stats
        assert stats.lost_transfers > 0


# ----------------------------------------------------------------------
# channel mechanics on hand-built traces
# ----------------------------------------------------------------------
class TestChannelMechanics:
    def test_delay_shifts_delivery(self):
        trace = _two_node_trace((0.0, 100.0))
        result = DesSimulator(
            trace, algorithm_by_name("Epidemic"),
            constraints=ResourceConstraints(
                channel=ChannelSpec(delay=2.5)),
            seed=1).run([_message(creation_time=1.0)])
        outcome = result.outcomes[0]
        assert outcome.delivered
        assert outcome.delivery_time == pytest.approx(3.5)

    def test_delayed_reception_survives_contact_end(self):
        """OWLT semantics: a transfer launched in-contact completes even if
        the contact has ended by the arrival instant."""
        trace = _two_node_trace((0.0, 2.0))
        result = DesSimulator(
            trace, algorithm_by_name("Epidemic"),
            constraints=ResourceConstraints(
                channel=ChannelSpec(delay=10.0)),
            seed=1).run([_message(creation_time=0.5)])
        outcome = result.outcomes[0]
        assert outcome.delivered
        assert outcome.delivery_time == pytest.approx(10.5)

    def test_total_loss_without_retransmission_window(self):
        """A contact too short for the backoff ladder delivers nothing."""
        trace = _two_node_trace((0.0, 0.5))
        result = DesSimulator(
            trace, algorithm_by_name("Epidemic"),
            constraints=ResourceConstraints(
                channel=ChannelSpec(loss=1.0 - 1e-12)),
            seed=1).run([_message(creation_time=0.0)])
        assert not result.outcomes[0].delivered
        assert result.stats.lost_transfers >= 1
        assert result.stats.retransmissions == 0

    def test_retransmission_recovers_within_contact(self):
        """With retx_base=1 the first retry lands 1s later, well inside a
        long contact — eventually a draw succeeds and delivers."""
        trace = _two_node_trace((0.0, 10_000.0))
        result = DesSimulator(
            trace, algorithm_by_name("Epidemic"),
            constraints=ResourceConstraints(
                channel=ChannelSpec(loss=0.9, retx_base=1.0, retx_cap=4.0)),
            seed=3).run([_message(creation_time=0.0)])
        assert result.outcomes[0].delivered
        assert result.stats.retransmissions >= 1
        assert result.stats.retransmissions >= result.stats.lost_transfers

    def test_retx_limit_caps_attempts(self):
        trace = _two_node_trace((0.0, 10_000.0))
        result = DesSimulator(
            trace, algorithm_by_name("Epidemic"),
            constraints=ResourceConstraints(
                channel=ChannelSpec(loss=1.0 - 1e-12, retx_base=1.0,
                                    retx_cap=2.0, retx_limit=3)),
            seed=3).run([_message(creation_time=0.0)])
        assert not result.outcomes[0].delivered
        assert result.stats.retransmissions == 3
        assert result.stats.lost_transfers == 4  # initial + 3 retries

    def test_lost_transfers_still_spend_bytes(self):
        """Loss consumes link budget: bytes_sent counts every launched
        attempt, not only the successful one."""
        trace = _two_node_trace((0.0, 10_000.0))
        constraints = ResourceConstraints(
            bandwidth=4.0,
            channel=ChannelSpec(loss=0.9, retx_base=1.0, retx_cap=2.0))
        result = DesSimulator(
            trace, algorithm_by_name("Epidemic"), constraints=constraints,
            seed=3).run([_message(creation_time=0.0, size=4.0)])
        assert result.outcomes[0].delivered
        attempts = result.stats.lost_transfers + 1
        assert result.stats.bytes_sent == pytest.approx(4.0 * attempts)

    def test_backoff_is_capped_exponential(self):
        spec = ChannelSpec(retx_base=1.0, retx_cap=5.0)
        assert [spec.backoff(n) for n in range(5)] == [1.0, 2.0, 4.0, 5.0, 5.0]


# ----------------------------------------------------------------------
# churn mechanics on hand-built traces
# ----------------------------------------------------------------------
class TestChurnMechanics:
    def test_schedule_is_seeded_and_bounded(self):
        spec = ChurnSpec(crash_rate=0.01, mean_downtime=30.0)
        nodes = ["a", "b", "c"]
        first = spec.schedule(nodes, duration=5_000.0, master_seed=7)
        again = spec.schedule(nodes, duration=5_000.0, master_seed=7)
        other = spec.schedule(nodes, duration=5_000.0, master_seed=8)
        assert first == again
        assert first != other
        assert any(first.values())
        for windows in first.values():
            for down, up in windows:
                assert 0.0 < down < 5_000.0
                assert up > down

    def test_max_crashes_zero_is_null(self):
        assert ChurnSpec(crash_rate=0.5, max_crashes=0).is_null

    def test_crash_wipes_buffer_and_prevents_delivery(self):
        """b crashes between its contact with a and the destination
        contact; the copy it carried must be gone."""
        contacts = [
            Contact(start=0.0, end=1.0, a="a", b="b"),
            Contact(start=200.0, end=201.0, a="b", b="c"),
        ]
        trace = ContactTrace(contacts, name="relay")
        message = Message(id="m1", source="a", destination="c",
                          creation_time=0.0, size=1.0, ttl=None)
        # crash_rate high enough that b reliably crashes in (1, 200) for
        # this seed; pin via the schedule itself rather than hoping
        churn = ChurnSpec(crash_rate=0.05, mean_downtime=10.0, max_crashes=1)
        schedule = churn.schedule(["a", "b", "c"], trace.duration,
                                  master_seed=4)
        down, up = schedule["b"][0]
        assert 1.0 < down < 200.0, (
            "seed 4 must crash b between the contacts for this test")
        result = DesSimulator(
            trace, algorithm_by_name("Epidemic"),
            constraints=ResourceConstraints(churn=churn),
            seed=4).run([message])
        assert not result.outcomes[0].delivered
        assert result.stats.node_crashes >= 1
        assert result.stats.churn_dropped_copies >= 1

    def test_crash_truncates_open_contact(self):
        """A crash mid-contact fires the protocol's contact-end early and
        the trace's own CONTACT_END is suppressed."""
        trace = _two_node_trace((0.0, 1_000.0))
        churn = ChurnSpec(crash_rate=0.01, mean_downtime=5.0, max_crashes=1)
        schedule = churn.schedule(["a", "b"], trace.duration, master_seed=2)
        crash_times = [down for windows in schedule.values()
                       for down, _ in windows]
        assert any(0.0 < down < 1_000.0 for down in crash_times), (
            "seed 2 must crash a node inside the contact for this test")
        result = DesSimulator(
            trace, algorithm_by_name("Epidemic"),
            constraints=ResourceConstraints(churn=churn),
            seed=2).run([_message(creation_time=1_500.0)])
        assert result.stats.truncated_contacts >= 1

    def test_source_down_rejects_creation(self):
        trace = _two_node_trace((0.0, 10.0), (400.0, 410.0))
        churn = ChurnSpec(crash_rate=0.01, mean_downtime=50.0)
        schedule = churn.schedule(["a", "b"], trace.duration, master_seed=9)
        window = next(((down, up) for down, up in schedule.get("a", ())
                       if up < 400.0 and down > 10.0), None)
        assert window is not None, (
            "seed 9 must give 'a' a downtime window between the contacts")
        creation = (window[0] + window[1]) / 2.0
        result = DesSimulator(
            trace, algorithm_by_name("Epidemic"),
            constraints=ResourceConstraints(churn=churn),
            seed=9).run([_message(creation_time=creation)])
        assert result.stats.source_rejections >= 1
        assert not result.outcomes[0].delivered
