"""Unit tests for the repro.exp building blocks: hashing, specs, planning,
RunRecord round-trips and the JSONL result store."""

from __future__ import annotations

import json

import pytest

from repro.exp.hashing import canonical, canonical_json, stable_hash
from repro.exp.plan import build_plan
from repro.exp.records import RECORD_SCHEMA, decode_result, encode_record
from repro.exp.spec import ExperimentSpec, SweepAxis
from repro.exp.store import ResultStore
from repro.sim import ResourceConstraints, get_scenario
from repro.sim.engine import SWEEPABLE_PARAMETERS


class TestHashing:
    def test_canonical_dataclasses_and_scalars(self):
        constraints = ResourceConstraints(buffer_capacity=4.0)
        payload = canonical(constraints)
        # registered specs are tagged by category:kind (stable across
        # module refactors); plain dataclasses keep their module path
        assert payload["__type__"] == "spec:constraints:resource"
        assert payload["buffer_capacity"] == 4.0
        from repro.sim.engine import ResourceStats
        assert canonical(ResourceStats())["__type__"].endswith("ResourceStats")
        assert canonical((1, "a", None, True)) == [1, "a", None, True]
        assert canonical({"b": 2, "a": 1}) == {"a": 1, "b": 2}

    def test_canonical_json_is_deterministic(self):
        a = canonical_json({"x": [1.5, None], "y": "z"})
        b = canonical_json({"y": "z", "x": [1.5, None]})
        assert a == b

    def test_stable_hash_distinguishes_content(self):
        base = ResourceConstraints(ttl=900.0)
        assert stable_hash(base) == stable_hash(ResourceConstraints(ttl=900.0))
        assert stable_hash(base) != stable_hash(ResourceConstraints(ttl=901.0))

    def test_unserializable_values_are_refused(self):
        with pytest.raises(TypeError, match="canonicalize"):
            canonical(object())
        # code has no capturable content: two lambdas must never collide
        with pytest.raises(TypeError, match="data, not code"):
            canonical(lambda m: m)

    def test_plain_objects_hash_their_full_state(self):
        """Underscore attrs and __slots__ carry behavioral state in plain
        classes; both must reach the hash or distinct objects collide."""
        class Hidden:
            def __init__(self, n):
                self._n = n

        class Slotted:
            __slots__ = ("n",)

            def __init__(self, n):
                self.n = n

        assert stable_hash(Hidden(1)) != stable_hash(Hidden(2))
        assert stable_hash(Slotted(1)) != stable_hash(Slotted(2))
        assert stable_hash(Slotted(1)) == stable_hash(Slotted(1))

    def test_numpy_arrays_and_scalars_canonicalize(self):
        import numpy as np

        assert canonical(np.float64(2.5)) == 2.5
        assert canonical(np.int64(3)) == 3
        assert canonical(np.array([1.0, 2.0, 3.0])) == [1, 2, 3]


class TestExperimentSpec:
    def test_dict_round_trip(self):
        spec = ExperimentSpec(
            name="study", scenarios=("paper-ideal", "rwp-courtyard"),
            protocols=("Epidemic", "Direct Delivery"), seeds=(7, 8),
            num_runs=2, constraints=ResourceConstraints(ttl=900.0),
            sweep=SweepAxis("buffer_capacity", (2.0, None)))
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec

    def test_json_file_round_trip(self, tmp_path):
        path = tmp_path / "spec.json"
        payload = {"name": "fromfile", "scenarios": ["paper-ttl-tight"],
                   "seeds": [3], "sweep": {"parameter": "bandwidth",
                                           "values": [2, None]}}
        path.write_text(json.dumps(payload))
        spec = ExperimentSpec.from_json_file(path)
        assert spec.name == "fromfile"
        assert spec.sweep.values == (2.0, None)

    def test_validation(self):
        with pytest.raises(ValueError, match="name"):
            ExperimentSpec(name="", scenarios=("paper-ideal",))
        with pytest.raises(ValueError, match="scenario"):
            ExperimentSpec(name="x", scenarios=())
        with pytest.raises(ValueError, match="engine"):
            ExperimentSpec(name="x", scenarios=("paper-ideal",),
                           engine="quantum")
        with pytest.raises(ValueError, match="cannot sweep"):
            SweepAxis("warp_factor", (1.0,))
        with pytest.raises(ValueError, match="seeds must be integers"):
            ExperimentSpec(name="x", scenarios=("paper-ideal",),
                           seeds=(7.5,))
        with pytest.raises(ValueError, match="unknown experiment spec field"):
            ExperimentSpec.from_dict({"name": "x", "scenarios": ["paper-ideal"],
                                      "typo_field": 1})
        with pytest.raises(ValueError, match="'sweep' must be an object"):
            ExperimentSpec.from_dict({"name": "x",
                                      "scenarios": ["paper-ideal"],
                                      "sweep": ["buffer_capacity", [2, 4]]})
        with pytest.raises(ValueError, match="'constraints' must be"):
            ExperimentSpec.from_dict({"name": "x",
                                      "scenarios": ["paper-ideal"],
                                      "constraints": 5})

    def test_sweepable_parameters_reexported_from_engine(self):
        assert SWEEPABLE_PARAMETERS == ("buffer_capacity", "bandwidth",
                                        "ttl", "message_size")


class TestPlanner:
    def test_grid_size_and_order(self):
        spec = ExperimentSpec(
            name="grid", scenarios=("paper-ttl-tight",),
            protocols=("Epidemic", "Direct Delivery"), seeds=(7, 8),
            num_runs=2, sweep=SweepAxis("buffer_capacity", (4.0, None)))
        plan = build_plan(spec)
        # values x seeds x runs x protocols
        assert len(plan) == 2 * 2 * 2 * 2
        first = plan.jobs[0]
        assert (first.sweep_value, first.seed, first.run_index,
                first.protocol) == (4.0, 7, 0, "Epidemic")
        # protocol varies fastest, then run, then seed, then sweep value
        assert plan.jobs[1].protocol == "Direct Delivery"
        assert plan.jobs[2].run_index == 1
        assert plan.jobs[4].seed == 8
        assert plan.jobs[8].sweep_value is None

    def test_job_hashes_are_content_addressed(self):
        spec = ExperimentSpec(name="a", scenarios=("paper-ideal",),
                              protocols=("Epidemic",), seeds=(7,))
        renamed = spec.with_overrides(name="b")
        assert build_plan(spec).job_hashes() == build_plan(renamed).job_hashes()
        reseeded = spec.with_overrides(seeds=(8,))
        assert build_plan(spec).job_hashes() != \
            build_plan(reseeded).job_hashes()

    def test_extending_the_grid_preserves_existing_hashes(self):
        small = ExperimentSpec(name="x", scenarios=("paper-ideal",),
                               protocols=("Epidemic",), seeds=(7,))
        grown = small.with_overrides(seeds=(7, 8),
                                     protocols=("Epidemic", "Direct Delivery"))
        small_hashes = set(build_plan(small).job_hashes())
        grown_hashes = set(build_plan(grown).job_hashes())
        assert small_hashes < grown_hashes
        assert len(grown_hashes) == 4

    def test_duplicate_grid_axes_are_deduplicated(self):
        """Repeated scenarios / seeds / sweep values / alias protocols plan
        one job, so no reassembly layer double-pools a result."""
        duplicated = ExperimentSpec(
            name="x", scenarios=("paper-ideal", "paper-ideal"),
            protocols=("Epidemic", "epidemic"), seeds=(7, 7),
            sweep=SweepAxis("buffer_capacity", (4.0, 4.0)))
        clean = ExperimentSpec(
            name="x", scenarios=("paper-ideal",), protocols=("Epidemic",),
            seeds=(7,), sweep=SweepAxis("buffer_capacity", (4.0,)))
        assert build_plan(duplicated).job_hashes() == \
            build_plan(clean).job_hashes()
        inline = get_scenario("paper-ideal")
        assert build_plan(ExperimentSpec(
            name="x", scenarios=(inline, inline), protocols=("Epidemic",),
            seeds=(7,))).job_hashes() == \
            build_plan(ExperimentSpec(
                name="x", scenarios=(inline,), protocols=("Epidemic",),
                seeds=(7,))).job_hashes()

    def test_int_and_float_constraint_values_hash_identically(self):
        """JSON specs write 1800 where code writes 1800.0; equal specs must
        share storage keys or resume silently re-runs everything."""
        as_int = ExperimentSpec(name="x", scenarios=("paper-ideal",),
                                protocols=("Epidemic",), seeds=(7,),
                                constraints=ResourceConstraints(ttl=1800))
        as_float = as_int.with_overrides(
            constraints=ResourceConstraints(ttl=1800.0))
        assert as_int == as_float
        assert build_plan(as_int).job_hashes() == \
            build_plan(as_float).job_hashes()

    def test_ttl_sweep_on_ttl_stamping_workload_is_refused(self):
        """The exp front door refuses the same silent no-op sweep the
        sweep_scenario adapter refuses."""
        from repro.forwarding import PoissonMessageWorkload

        stamped = get_scenario("paper-ideal").with_overrides(
            name="stamped", workload=PoissonMessageWorkload(rate=0.01,
                                                            ttl=600.0))
        spec = ExperimentSpec(name="x", scenarios=(stamped,),
                              protocols=("Epidemic",),
                              sweep=SweepAxis("ttl", (300.0, None)))
        with pytest.raises(ValueError, match="per-message ttl"):
            build_plan(spec)

    def test_alias_protocols_hash_identically(self):
        canonical_spec = ExperimentSpec(name="x", scenarios=("paper-ideal",),
                                        protocols=("PRoPHET",), seeds=(7,))
        aliased = canonical_spec.with_overrides(protocols=("prophet",))
        assert build_plan(canonical_spec).job_hashes() == \
            build_plan(aliased).job_hashes()
        # alias spellings inside a scenario's own algorithms tuple too
        scenario = get_scenario("paper-ideal").with_overrides(
            algorithms=("binary-spray-and-wait",))
        display = scenario.with_overrides(
            algorithms=("Binary Spray-and-Wait",))
        assert build_plan(ExperimentSpec(
            name="x", scenarios=(scenario,), seeds=(7,))).job_hashes() == \
            build_plan(ExperimentSpec(
                name="x", scenarios=(display,), seeds=(7,))).job_hashes()

    def test_dataset_trace_key_is_seed_independent(self):
        """Dataset stand-ins pin their own registry seed, so one worker-cache
        entry serves every master seed; seeded traces key per seed."""
        spec = ExperimentSpec(name="x", scenarios=("paper-ideal",),
                              protocols=("Epidemic",), seeds=(7, 8))
        plan = build_plan(spec)
        assert plan.jobs[0].trace_key == plan.jobs[1].trace_key
        rwp = ExperimentSpec(name="x", scenarios=("rwp-courtyard",),
                             protocols=("Epidemic",), seeds=(7, 8))
        rwp_plan = build_plan(rwp)
        assert rwp_plan.jobs[0].trace_key != rwp_plan.jobs[1].trace_key

    def test_trace_engine_rejects_constrained_points(self):
        spec = ExperimentSpec(name="x", scenarios=("paper-buffer-crunch",),
                              engine="trace")
        with pytest.raises(ValueError, match="idealized"):
            build_plan(spec)

    def test_unknown_names_fail_before_any_simulation(self):
        # eagerly, at spec construction — not at plan or run time
        with pytest.raises(KeyError, match="unknown scenario"):
            ExperimentSpec(name="x", scenarios=("nope",))
        with pytest.raises(ValueError, match="valid protocols"):
            ExperimentSpec(name="x", scenarios=("paper-ideal",),
                           protocols=("Telepathy",))


def _one_result():
    """One real simulated job + its result, for record round-trips."""
    from repro.exp.orchestrator import execute_plan

    plan = build_plan(ExperimentSpec(
        name="roundtrip", scenarios=("paper-ttl-tight",),
        protocols=("Epidemic",), seeds=(7,)))
    outcome = execute_plan(plan)
    job = plan.jobs[0]
    return job, outcome.result_for(job)


class TestRunRecords:
    def test_encode_decode_round_trip_is_lossless(self):
        job, result = _one_result()
        record = encode_record(job, result, experiment="roundtrip")
        # through JSON, as the store would do it
        decoded = decode_result(json.loads(json.dumps(record)))
        assert decoded == result
        assert decoded.stats == result.stats
        assert decoded.constraints == result.constraints
        assert [o.message for o in decoded.outcomes] == \
            [o.message for o in result.outcomes]

    def test_record_carries_grid_labels(self):
        job, result = _one_result()
        record = encode_record(job, result, experiment="roundtrip")
        assert record["schema"] == RECORD_SCHEMA
        assert record["job_hash"] == job.job_hash
        assert record["scenario"] == "paper-ttl-tight"
        assert record["protocol"] == "Epidemic"
        assert record["seed"] == 7
        assert record["sweep"] is None

    def test_unknown_schema_is_refused(self):
        job, result = _one_result()
        record = encode_record(job, result)
        record["schema"] = 999
        with pytest.raises(ValueError, match="schema"):
            decode_result(record)


class TestResultStore:
    def test_put_get_contains_len(self, tmp_path):
        store = ResultStore(tmp_path / "results")
        job, result = _one_result()
        record = encode_record(job, result, experiment="t")
        assert job.job_hash not in store
        store.put(record)
        assert job.job_hash in store
        assert len(store) == 1
        assert store.get(job.job_hash) == record

    def test_persistence_across_instances(self, tmp_path):
        root = tmp_path / "results"
        job, result = _one_result()
        ResultStore(root).put(encode_record(job, result))
        reopened = ResultStore(root)
        assert decode_result(reopened.get(job.job_hash)) == result

    def test_last_write_wins_on_duplicate_hash(self, tmp_path):
        store = ResultStore(tmp_path / "results")
        job, result = _one_result()
        first = encode_record(job, result, experiment="first")
        second = encode_record(job, result, experiment="second")
        store.put(first)
        store.put(second)
        assert len(store) == 1
        assert ResultStore(store.root).get(job.job_hash)["experiment"] == \
            "second"

    def test_rejects_records_without_hash(self, tmp_path):
        store = ResultStore(tmp_path / "results")
        with pytest.raises(ValueError, match="job_hash"):
            store.put({"schema": RECORD_SCHEMA})

    def test_truncated_final_line_is_tolerated(self, tmp_path):
        """A kill mid-append leaves a partial last line; earlier records
        must survive (the lost job simply re-runs on resume)."""
        root = tmp_path / "results"
        root.mkdir()
        (root / "records.jsonl").write_text(
            '{"job_hash": "a"}\n{"job_hash": "b", "trunc')
        store = ResultStore(root)
        with pytest.warns(UserWarning, match="truncated final record"):
            store.load()
        assert store.hashes() == ["a"]

    def test_append_after_truncated_tail_starts_a_fresh_line(self, tmp_path):
        """Resuming over a truncated tail must not glue the new record onto
        the partial line (which would corrupt the store permanently)."""
        root = tmp_path / "results"
        job, result = _one_result()
        store = ResultStore(root)
        store.put(encode_record(job, result, experiment="a"))
        # kill mid-append: chop the last 10 bytes of the file
        data = store.path.read_bytes()
        store.path.write_bytes(data + b'{"job_hash": "bb')
        reopened = ResultStore(root)
        with pytest.warns(UserWarning, match="truncated final record"):
            reopened.load()
        reopened.put(encode_record(job, result, experiment="b"))
        reopened.put(encode_record(job, result, experiment="c"))
        # a fresh instance re-reads the file from scratch without complaint
        final = ResultStore(root)
        assert final.get(job.job_hash)["experiment"] == "c"
        assert len(final) == 1

    def test_complete_final_record_without_newline_is_not_glued(self, tmp_path):
        """A kill between the record write and the newline write leaves a
        complete last line with no newline; the next append must start a
        fresh line, not glue onto it."""
        root = tmp_path / "results"
        job, result = _one_result()
        store = ResultStore(root)
        store.put(encode_record(job, result, experiment="a"))
        data = store.path.read_bytes()
        assert data.endswith(b"\n")
        store.path.write_bytes(data[:-1])  # drop only the trailing newline
        reopened = ResultStore(root)
        reopened.load()
        record = dict(encode_record(job, result, experiment="b"))
        record["job_hash"] = "second-job"
        reopened.put(record)
        final = ResultStore(root)
        assert len(final) == 2
        assert final.get(job.job_hash)["experiment"] == "a"
        assert final.get("second-job")["experiment"] == "b"

    def test_put_never_discards_another_writers_appends(self, tmp_path):
        """A clean store that merely grew under a second writer must not be
        truncated back to this instance's loaded size."""
        root = tmp_path / "results"
        job, result = _one_result()
        reader = ResultStore(root)
        reader.load()  # indexes an empty (non-existent) file
        writer = ResultStore(root)
        writer.put(encode_record(job, result, experiment="other-process"))
        record = dict(encode_record(job, result, experiment="mine"))
        record["job_hash"] = "different-job"
        reader.put(record)
        final = ResultStore(root)
        assert len(final) == 2
        assert final.get(job.job_hash)["experiment"] == "other-process"

    def test_corrupt_interior_lines_warn_and_are_skipped(self, tmp_path):
        """Records are independent content-addressed lines: one damaged
        line costs one re-run, not the whole store."""
        root = tmp_path / "results"
        root.mkdir()
        (root / "records.jsonl").write_text(
            '{"job_hash": "a"}\nnot json\n{"job_hash": "b"}\n')
        store = ResultStore(root)
        with pytest.warns(UserWarning, match="skipping corrupt record"):
            store.load()
        assert sorted(store.hashes()) == ["a", "b"]

    def test_concurrent_writers_partial_line_does_not_glue(self, tmp_path):
        """If another process crashed mid-append after this instance
        loaded, put() must still start its record on a fresh line."""
        root = tmp_path / "results"
        job, result = _one_result()
        store = ResultStore(root)
        store.load()  # clean (empty) view
        # another writer crashes mid-append after our load
        root.mkdir(parents=True, exist_ok=True)
        (root / "records.jsonl").write_text('{"job_hash": "partial-cr')
        store.put(encode_record(job, result, experiment="after-crash"))
        final = ResultStore(root)
        with pytest.warns(UserWarning, match="skipping corrupt record"):
            final.load()
        assert final.get(job.job_hash)["experiment"] == "after-crash"
