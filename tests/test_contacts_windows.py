"""Unit tests for window selection (repro.contacts.windows)."""

from __future__ import annotations

import pytest

from repro.contacts import (
    Contact,
    ContactTrace,
    message_generation_window,
    select_stable_windows,
    split_into_windows,
)


def _steady_trace(duration: float = 7200.0, period: float = 20.0) -> ContactTrace:
    contacts = []
    t = 0.0
    node = 0
    while t < duration - 1:
        contacts.append(Contact(t, t + 5.0, node % 5, (node + 1) % 5))
        t += period
        node += 1
    return ContactTrace(contacts, nodes=range(5), duration=duration, name="steady")


class TestSplitIntoWindows:
    def test_covers_whole_trace(self):
        trace = _steady_trace(3600.0)
        windows = split_into_windows(trace, 600.0)
        assert len(windows) == 6
        assert sum(len(w) for w in windows) == len(trace)

    def test_windows_are_rebased(self):
        trace = _steady_trace(1200.0)
        windows = split_into_windows(trace, 600.0)
        assert all(w.duration == pytest.approx(600.0) for w in windows)
        assert windows[1][0].start < 600.0

    def test_last_window_may_be_short(self):
        trace = _steady_trace(1000.0)
        windows = split_into_windows(trace, 600.0)
        assert windows[-1].duration == pytest.approx(400.0)

    def test_rejects_non_positive_window(self):
        with pytest.raises(ValueError):
            split_into_windows(_steady_trace(600.0), 0.0)

    def test_window_names_are_indexed(self):
        windows = split_into_windows(_steady_trace(1200.0), 600.0)
        assert windows[0].name.endswith("w0")
        assert windows[1].name.endswith("w1")


class TestSelectStableWindows:
    def test_steady_trace_yields_windows(self):
        trace = _steady_trace(7200.0)
        windows = select_stable_windows(trace, window_seconds=3600.0,
                                        step_seconds=1800.0)
        assert windows
        assert all(w.stationarity <= 0.75 for w in windows)

    def test_windows_sorted_by_stability(self):
        trace = _steady_trace(7200.0)
        windows = select_stable_windows(trace, window_seconds=1800.0,
                                        step_seconds=900.0)
        scores = [w.stationarity for w in windows]
        assert scores == sorted(scores)

    def test_bursty_trace_yields_no_windows(self):
        # All contacts in the first minute of a two-hour trace.
        contacts = [Contact(float(t), float(t) + 1.0, 0, 1) for t in range(0, 60, 2)]
        trace = ContactTrace(contacts, duration=7200.0)
        windows = select_stable_windows(trace, window_seconds=3600.0,
                                        step_seconds=1800.0, max_cov=0.5)
        assert windows == []

    def test_window_duration_property(self):
        trace = _steady_trace(7200.0)
        windows = select_stable_windows(trace, window_seconds=3600.0,
                                        step_seconds=3600.0)
        assert all(w.duration == pytest.approx(3600.0) for w in windows)

    def test_rejects_bad_parameters(self):
        trace = _steady_trace(3600.0)
        with pytest.raises(ValueError):
            select_stable_windows(trace, window_seconds=0.0)
        with pytest.raises(ValueError):
            select_stable_windows(trace, step_seconds=0.0)


class TestMessageGenerationWindow:
    def test_guard_hour_is_reserved(self):
        trace = _steady_trace(3 * 3600.0)
        lo, hi = message_generation_window(trace, guard_seconds=3600.0)
        assert lo == 0.0
        assert hi == pytest.approx(2 * 3600.0)

    def test_short_trace_falls_back_to_half(self):
        trace = _steady_trace(1800.0)
        lo, hi = message_generation_window(trace, guard_seconds=3600.0)
        assert lo == 0.0
        assert hi == pytest.approx(900.0)

    def test_zero_guard_uses_whole_window(self):
        trace = _steady_trace(1000.0)
        _, hi = message_generation_window(trace, guard_seconds=0.0)
        assert hi == pytest.approx(1000.0)

    def test_rejects_negative_guard(self):
        with pytest.raises(ValueError):
            message_generation_window(_steady_trace(600.0), guard_seconds=-1.0)
