"""Unit tests for in/out node and pair classification (repro.core.pair_types)."""

from __future__ import annotations

import pytest

from repro.core import (
    NodeClass,
    PairType,
    classify_nodes,
    classify_pair,
    group_by_pair_type,
    pair_type_of_message,
)


class TestNodeClassification:
    def test_median_split_from_rates(self):
        rates = {0: 0.1, 1: 0.2, 2: 0.3, 3: 0.4}
        classification = classify_nodes(rates)
        assert classification.threshold == pytest.approx(0.25)
        assert classification.node_class(0) is NodeClass.OUT
        assert classification.node_class(1) is NodeClass.OUT
        assert classification.node_class(2) is NodeClass.IN
        assert classification.node_class(3) is NodeClass.IN

    def test_split_from_trace(self, star_trace):
        classification = classify_nodes(star_trace)
        assert classification.node_class(0) is NodeClass.IN  # the hub
        # The five spokes all sit exactly at the median and are 'out'.
        assert all(classification.node_class(n) is NodeClass.OUT for n in range(1, 6))

    def test_explicit_threshold(self):
        rates = {0: 0.1, 1: 0.5}
        classification = classify_nodes(rates, threshold=0.05)
        assert classification.node_class(0) is NodeClass.IN
        assert classification.node_class(1) is NodeClass.IN

    def test_groups_roughly_equal_size(self, small_conference_trace):
        classification = classify_nodes(small_conference_trace)
        num_in = len(classification.nodes_in_class(NodeClass.IN))
        num_out = len(classification.nodes_in_class(NodeClass.OUT))
        assert abs(num_in - num_out) <= small_conference_trace.num_nodes // 4

    def test_rejects_empty_input(self):
        with pytest.raises(ValueError):
            classify_nodes({})

    def test_rejects_wrong_type(self):
        with pytest.raises(TypeError):
            classify_nodes([1, 2, 3])

    def test_rates_preserved_in_result(self):
        rates = {7: 0.4, 8: 0.8}
        classification = classify_nodes(rates)
        assert classification.rates == rates


class TestPairTypes:
    def test_from_classes_mapping(self):
        assert PairType.from_classes(NodeClass.IN, NodeClass.IN) is PairType.IN_IN
        assert PairType.from_classes(NodeClass.IN, NodeClass.OUT) is PairType.IN_OUT
        assert PairType.from_classes(NodeClass.OUT, NodeClass.IN) is PairType.OUT_IN
        assert PairType.from_classes(NodeClass.OUT, NodeClass.OUT) is PairType.OUT_OUT

    def test_ordered_matches_paper_presentation(self):
        assert PairType.ordered() == (PairType.IN_IN, PairType.IN_OUT,
                                      PairType.OUT_IN, PairType.OUT_OUT)

    def test_pair_type_is_direction_sensitive(self):
        rates = {0: 1.0, 1: 0.01, 2: 0.9, 3: 0.02}
        classification = classify_nodes(rates)
        assert classify_pair(classification, 0, 1) is PairType.IN_OUT
        assert classify_pair(classification, 1, 0) is PairType.OUT_IN

    def test_pair_type_of_message_from_trace(self, star_trace):
        assert pair_type_of_message(star_trace, 0, 1) is PairType.IN_OUT
        assert pair_type_of_message(star_trace, 1, 2) is PairType.OUT_OUT

    def test_value_strings(self):
        assert PairType.IN_IN.value == "in-in"
        assert NodeClass.OUT.value == "out"


class TestGroupByPairType:
    def test_groups_items(self):
        rates = {0: 1.0, 1: 0.01, 2: 0.9, 3: 0.02}
        classification = classify_nodes(rates)
        items = [(0, 2, "a"), (0, 1, "b"), (1, 2, "c"), (1, 3, "d")]
        grouped = group_by_pair_type(items, classification,
                                     endpoints=lambda item: (item[0], item[1]))
        assert [i[2] for i in grouped[PairType.IN_IN]] == ["a"]
        assert [i[2] for i in grouped[PairType.IN_OUT]] == ["b"]
        assert [i[2] for i in grouped[PairType.OUT_IN]] == ["c"]
        assert [i[2] for i in grouped[PairType.OUT_OUT]] == ["d"]

    def test_all_pair_types_present_even_if_empty(self):
        rates = {0: 1.0, 1: 0.01}
        classification = classify_nodes(rates)
        grouped = group_by_pair_type([], classification, endpoints=lambda x: x)
        assert set(grouped) == set(PairType.ordered())
        assert all(v == [] for v in grouped.values())
