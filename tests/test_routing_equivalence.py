"""Cross-engine equivalence for the protocol zoo.

Mirrors ``tests/test_sim_equivalence.py`` for the new stateful protocols:
every protocol must produce *identical* delivery streams — deliveries,
first-delivery times, hop counts and total copy counts — in the
trace-driven :class:`~repro.forwarding.ForwardingSimulator` and the
unconstrained :class:`~repro.sim.DesSimulator` on the four paper dataset
stand-ins.  It also pins the compatibility guarantee: the six paper
algorithms behave byte-identically whether run raw (pre-wrapper API) or
through the protocol registry, in both engines.
"""

from __future__ import annotations

import pytest

from repro.datasets import PAPER_DATASET_KEYS, load_dataset
from repro.forwarding import ForwardingSimulator, PoissonMessageWorkload
from repro.forwarding.algorithms import algorithm_by_name, algorithm_names
from repro.routing import NEW_PROTOCOL_NAMES, protocol_by_name
from repro.sim import DesSimulator

_SCALE = 0.2
_RATE = 0.01


def _assert_results_equal(reference, candidate, context=""):
    assert candidate.algorithm == reference.algorithm, context
    assert len(candidate.outcomes) == len(reference.outcomes), context
    for position, (expected, actual) in enumerate(
            zip(reference.outcomes, candidate.outcomes)):
        where = f"{context} message {expected.message.id} (#{position})"
        assert actual.message == expected.message, where
        assert actual.delivered == expected.delivered, where
        assert actual.delivery_time == expected.delivery_time, where
        assert actual.hop_count == expected.hop_count, where
    assert candidate.copies_sent == reference.copies_sent, context


def _workload(trace, seed=11):
    return PoissonMessageWorkload(rate=_RATE).generate(trace, seed=seed)


@pytest.mark.parametrize("dataset_key", PAPER_DATASET_KEYS)
def test_new_protocols_identical_across_engines(dataset_key):
    """Every zoo protocol: trace-driven == unconstrained DES streams."""
    trace = load_dataset(dataset_key, scale=_SCALE, contact_scale=_SCALE)
    messages = _workload(trace)
    assert messages, "workload must not be empty for the test to mean anything"
    for protocol_name in NEW_PROTOCOL_NAMES:
        reference = ForwardingSimulator(
            trace, protocol_by_name(protocol_name)).run(messages)
        candidate = DesSimulator(
            trace, protocol_by_name(protocol_name)).run(messages)
        _assert_results_equal(reference, candidate,
                              context=f"{dataset_key} {protocol_name}")


@pytest.mark.parametrize("dataset_key", PAPER_DATASET_KEYS[:1])
def test_paper_algorithms_unchanged_under_wrapper(dataset_key):
    """Raw legacy API == registry-wrapped, in both engines (acceptance)."""
    trace = load_dataset(dataset_key, scale=_SCALE, contact_scale=_SCALE)
    messages = _workload(trace, seed=17)
    for name in algorithm_names():
        raw = ForwardingSimulator(trace, algorithm_by_name(name)).run(messages)
        wrapped_trace = ForwardingSimulator(
            trace, protocol_by_name(name)).run(messages)
        wrapped_des = DesSimulator(trace, protocol_by_name(name)).run(messages)
        _assert_results_equal(raw, wrapped_trace, context=f"trace {name}")
        _assert_results_equal(raw, wrapped_des, context=f"des {name}")


def test_new_protocols_identical_without_stop_on_delivery():
    """Continued propagation after delivery must match too."""
    trace = load_dataset("infocom06-3-6", scale=_SCALE, contact_scale=_SCALE)
    messages = _workload(trace, seed=31)
    for protocol_name in ("Binary Spray-and-Wait", "PRoPHET", "Hypergossip"):
        reference = ForwardingSimulator(trace, protocol_by_name(protocol_name),
                                        stop_on_delivery=False).run(messages)
        candidate = DesSimulator(trace, protocol_by_name(protocol_name),
                                 stop_on_delivery=False).run(messages)
        _assert_results_equal(reference, candidate,
                              context=f"no-stop {protocol_name}")


def test_new_protocols_are_run_reproducible():
    """Two runs of the same protocol instance give the same stream (state
    resets through prepare), and a fresh registry instance agrees."""
    trace = load_dataset("conext06-9-12", scale=_SCALE, contact_scale=_SCALE)
    messages = _workload(trace, seed=23)
    for protocol_name in NEW_PROTOCOL_NAMES:
        protocol = protocol_by_name(protocol_name)
        first = ForwardingSimulator(trace, protocol).run(messages)
        second = ForwardingSimulator(trace, protocol).run(messages)
        fresh = ForwardingSimulator(
            trace, protocol_by_name(protocol_name)).run(messages)
        _assert_results_equal(first, second, context=f"rerun {protocol_name}")
        _assert_results_equal(first, fresh, context=f"fresh {protocol_name}")
