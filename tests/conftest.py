"""Shared fixtures for the test suite.

Fixtures are deliberately small (tens of nodes, minutes of simulated time)
so the full suite runs quickly; the scaling behaviour of the library is
exercised by the benchmarks instead.
"""

from __future__ import annotations

import pytest

from repro.contacts import Contact, ContactTrace
from repro.synth import ConferenceTraceGenerator, HomogeneousPoissonGenerator


@pytest.fixture
def tiny_trace() -> ContactTrace:
    """A hand-built 5-node trace with known structure.

    Timeline (seconds):
      0-20    : 0-1 in contact
      30-50   : 1-2 in contact
      60-80   : 2-3 in contact
      90-110  : 3-4 in contact
      120-140 : 0-4 in contact
    The only multi-hop route from 0 to 3 at t=0 goes 0→1→2→3 and completes
    in the 60-80 contact window.
    """
    contacts = [
        Contact(0.0, 20.0, 0, 1),
        Contact(30.0, 50.0, 1, 2),
        Contact(60.0, 80.0, 2, 3),
        Contact(90.0, 110.0, 3, 4),
        Contact(120.0, 140.0, 0, 4),
    ]
    return ContactTrace(contacts, nodes=range(5), duration=200.0, name="tiny")


@pytest.fixture
def star_trace() -> ContactTrace:
    """A hub-and-spoke trace: node 0 meets every other node frequently,
    spokes never meet each other.  Node 0 is the archetypal 'in' node."""
    contacts = []
    for spoke in range(1, 6):
        for start in range(0, 600, 100):
            offset = 10 * spoke
            contacts.append(Contact(start + offset, start + offset + 20, 0, spoke))
    return ContactTrace(contacts, nodes=range(6), duration=700.0, name="star")


@pytest.fixture
def dense_burst_trace() -> ContactTrace:
    """All pairs of 4 nodes in contact simultaneously during one burst."""
    contacts = []
    for a in range(4):
        for b in range(a + 1, 4):
            contacts.append(Contact(100.0, 120.0, a, b))
    return ContactTrace(contacts, nodes=range(4), duration=200.0, name="burst")


@pytest.fixture(scope="session")
def small_conference_trace() -> ContactTrace:
    """A seeded heterogeneous conference trace small enough for enumeration."""
    generator = ConferenceTraceGenerator(
        num_nodes=20, num_stationary=4, duration=3600.0,
        mean_contacts_per_node=40.0, mean_contact_duration=60.0,
    )
    return generator.generate(seed=42, name="small-conference")


@pytest.fixture(scope="session")
def small_homogeneous_trace() -> ContactTrace:
    """A seeded homogeneous Poisson trace."""
    generator = HomogeneousPoissonGenerator(
        num_nodes=15, contact_rate=1.0 / 120.0, duration=3600.0,
        contact_duration=30.0,
    )
    return generator.generate(seed=7, name="small-homogeneous")
