"""Unit tests for forwarding metrics and the comparison harness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.contacts import Contact, ContactTrace
from repro.core import PairType, classify_nodes
from repro.forwarding import (
    EpidemicForwarding,
    FreshForwarding,
    Message,
    PoissonMessageWorkload,
    SimulationResult,
    compare_algorithms,
    default_algorithms,
    delay_distribution,
    simulate,
    summarize,
    summarize_by_pair_type,
)
from repro.forwarding.simulator import DeliveryOutcome


def _outcome(mid, source, dest, created, delivered_at=None):
    message = Message(id=mid, source=source, destination=dest, creation_time=created)
    if delivered_at is None:
        return DeliveryOutcome(message=message, delivered=False,
                               delivery_time=None, hop_count=None)
    return DeliveryOutcome(message=message, delivered=True,
                           delivery_time=delivered_at, hop_count=1)


@pytest.fixture
def handmade_result() -> SimulationResult:
    result = SimulationResult(algorithm="Test", trace_name="t")
    result.outcomes = [
        _outcome(0, 0, 1, 0.0, delivered_at=100.0),
        _outcome(1, 0, 2, 0.0, delivered_at=300.0),
        _outcome(2, 1, 2, 50.0, delivered_at=250.0),
        _outcome(3, 2, 0, 0.0, delivered_at=None),
    ]
    return result


class TestSummarize:
    def test_summary_values(self, handmade_result):
        summary = summarize(handmade_result)
        assert summary.num_messages == 4
        assert summary.num_delivered == 3
        assert summary.success_rate == pytest.approx(0.75)
        assert summary.average_delay == pytest.approx((100 + 300 + 200) / 3)
        assert summary.median_delay == pytest.approx(200.0)

    def test_as_row_is_flat(self, handmade_result):
        row = summarize(handmade_result).as_row()
        assert row["algorithm"] == "Test"
        assert row["success_rate"] == pytest.approx(0.75)

    def test_empty_result(self):
        summary = summarize(SimulationResult(algorithm="X", trace_name="t"))
        assert summary.success_rate == 0.0
        assert summary.average_delay is None
        assert summary.as_row()["avg_delay_s"] is None


class TestDelayDistribution:
    def test_cdf_properties(self, handmade_result):
        delays, cdf = delay_distribution(handmade_result)
        assert list(delays) == [100.0, 200.0, 300.0]
        assert cdf[-1] == pytest.approx(1.0)
        assert np.all(np.diff(cdf) >= 0)

    def test_pooling_across_runs(self, handmade_result):
        delays, _ = delay_distribution([handmade_result, handmade_result])
        assert len(delays) == 6

    def test_empty(self):
        delays, cdf = delay_distribution(SimulationResult(algorithm="X", trace_name="t"))
        assert delays.size == 0 and cdf.size == 0


class TestPairTypeBreakdown:
    def test_grouping_covers_all_types(self, handmade_result):
        # Median split of four rates: nodes 0 and 1 are 'in', 2 and 3 'out'.
        rates = {0: 1.0, 1: 0.9, 2: 0.01, 3: 0.02}
        classification = classify_nodes(rates)
        by_type = summarize_by_pair_type(handmade_result, classification)
        assert set(by_type) == set(PairType.ordered())
        # message 0: 0(in)->1(in), message 1: 0(in)->2(out),
        # message 2: 1(in)->2(out), message 3: 2(out)->0(in)
        assert by_type[PairType.IN_IN].num_messages == 1
        assert by_type[PairType.IN_OUT].num_messages == 2
        assert by_type[PairType.OUT_IN].num_messages == 1
        assert by_type[PairType.OUT_OUT].num_messages == 0

    def test_per_type_success_rates(self, handmade_result):
        rates = {0: 1.0, 1: 0.9, 2: 0.01, 3: 0.02}
        by_type = summarize_by_pair_type(handmade_result, classify_nodes(rates))
        assert by_type[PairType.IN_IN].success_rate == 1.0
        assert by_type[PairType.OUT_IN].success_rate == 0.0
        assert by_type[PairType.OUT_OUT].success_rate == 0.0


class TestCompareAlgorithms:
    def test_runs_every_algorithm_on_same_messages(self, small_conference_trace):
        algorithms = [EpidemicForwarding(), FreshForwarding()]
        comparison = compare_algorithms(
            small_conference_trace, algorithms,
            workload=PoissonMessageWorkload(rate=0.01), num_runs=1, seed=3,
        )
        assert set(comparison.results) == {"Epidemic", "FRESH"}
        epidemic = comparison.results["Epidemic"][0]
        fresh = comparison.results["FRESH"][0]
        assert [o.message for o in epidemic.outcomes] == [o.message for o in fresh.outcomes]

    def test_multiple_runs_pooled(self, small_conference_trace):
        comparison = compare_algorithms(
            small_conference_trace, [EpidemicForwarding()],
            workload=PoissonMessageWorkload(rate=0.01), num_runs=3, seed=4,
        )
        assert len(comparison.results["Epidemic"]) == 3
        pooled = comparison.pooled_result("Epidemic")
        assert pooled.num_messages == sum(r.num_messages
                                          for r in comparison.results["Epidemic"])

    def test_fixed_messages_mode(self, small_conference_trace):
        messages = PoissonMessageWorkload(rate=0.01).generate(small_conference_trace, seed=1)
        comparison = compare_algorithms(small_conference_trace, [EpidemicForwarding()],
                                        messages=messages)
        assert comparison.results["Epidemic"][0].num_messages == len(messages)

    def test_requires_exactly_one_workload_source(self, small_conference_trace):
        with pytest.raises(ValueError):
            compare_algorithms(small_conference_trace, [EpidemicForwarding()])
        with pytest.raises(ValueError):
            compare_algorithms(small_conference_trace, [EpidemicForwarding()],
                               workload=PoissonMessageWorkload(rate=0.01),
                               messages=[])

    def test_rejects_non_positive_runs(self, small_conference_trace):
        with pytest.raises(ValueError):
            compare_algorithms(small_conference_trace, [EpidemicForwarding()],
                               workload=PoissonMessageWorkload(rate=0.01),
                               num_runs=0)

    def test_summaries_and_points(self, small_conference_trace):
        comparison = compare_algorithms(
            small_conference_trace, [EpidemicForwarding(), FreshForwarding()],
            workload=PoissonMessageWorkload(rate=0.02), num_runs=1, seed=7,
        )
        summaries = comparison.summaries()
        points = comparison.delay_success_points()
        assert set(summaries) == set(points)
        for name, summary in summaries.items():
            success, delay = points[name]
            assert success == pytest.approx(summary.success_rate)
            if summary.average_delay is not None:
                assert delay == pytest.approx(summary.average_delay)

    def test_pair_type_summaries(self, small_conference_trace):
        comparison = compare_algorithms(
            small_conference_trace, [EpidemicForwarding()],
            workload=PoissonMessageWorkload(rate=0.02), num_runs=1, seed=9,
        )
        by_algorithm = comparison.pair_type_summaries()
        assert "Epidemic" in by_algorithm
        assert set(by_algorithm["Epidemic"]) == set(PairType.ordered())

    def test_epidemic_dominates_success_rate(self, small_conference_trace):
        comparison = compare_algorithms(
            small_conference_trace, default_algorithms(),
            workload=PoissonMessageWorkload(rate=0.02), num_runs=1, seed=11,
        )
        summaries = comparison.summaries()
        epidemic_success = summaries["Epidemic"].success_rate
        for name, summary in summaries.items():
            assert summary.success_rate <= epidemic_success + 1e-9
