"""Trace analytics: queries, cross-run diffs and the tournament explain.

Pins the ISSUE 8 acceptance anchor: diffing a run against **itself**
reports zero divergences — without that anchor a nonzero diff between two
protocols would be meaningless.
"""

from __future__ import annotations

import pytest

from repro.datasets import PAPER_DATASET_KEYS, load_dataset
from repro.forwarding import ForwardingSimulator, PoissonMessageWorkload
from repro.forwarding.algorithms import algorithm_by_name
from repro.obs import (
    RecordingTracer,
    build_journeys,
    diff_traces,
    explain_protocol_gap,
    match_protocol_jobs,
    query_journeys,
)
from repro.obs.analyze import QUERY_KINDS
from repro.sim import ChannelSpec, DesSimulator, ResourceConstraints

_SCALE = 0.2
_RATE = 0.01


def _workload(dataset_key=PAPER_DATASET_KEYS[0]):
    trace = load_dataset(dataset_key, scale=_SCALE, contact_scale=_SCALE)
    messages = PoissonMessageWorkload(rate=_RATE).generate(trace, seed=11)
    return trace, messages


def _journeys_for(algorithm, constraints=None, seed=5):
    trace, messages = _workload()
    tracer = RecordingTracer()
    if constraints is None:
        ForwardingSimulator(trace, algorithm_by_name(algorithm),
                            tracer=tracer).run(messages)
    else:
        DesSimulator(trace, algorithm_by_name(algorithm),
                     constraints=constraints, seed=seed,
                     tracer=tracer).run(messages)
    return build_journeys(tracer.events)


@pytest.fixture(scope="module")
def epidemic_journeys():
    return _journeys_for("Epidemic")


class TestQuery:
    def test_no_filters_returns_everything(self, epidemic_journeys):
        assert len(query_journeys(epidemic_journeys)) == \
            len(epidemic_journeys)

    def test_kind_partitions_delivered_undelivered(self, epidemic_journeys):
        delivered = query_journeys(epidemic_journeys, kind="delivered")
        undelivered = query_journeys(epidemic_journeys, kind="undelivered")
        assert len(delivered) + len(undelivered) == len(epidemic_journeys)
        assert all(j.delivered for j in delivered)
        assert not any(j.delivered for j in undelivered)
        assert len(delivered) == epidemic_journeys.num_delivered

    def test_message_filter_selects_one(self, epidemic_journeys):
        target = next(iter(epidemic_journeys))
        selected = query_journeys(epidemic_journeys,
                                  message=target.message_id)
        assert [j.message_id for j in selected] == [target.message_id]

    def test_node_filter_matches_touchpoints(self, epidemic_journeys):
        target = next(j for j in epidemic_journeys if j.delivered)
        for node in (target.source, target.destination):
            selected = query_journeys(epidemic_journeys, node=node)
            assert target.message_id in {j.message_id for j in selected}

    def test_filters_are_anded(self, epidemic_journeys):
        delivered = query_journeys(epidemic_journeys, kind="delivered")
        target = delivered[0]
        both = query_journeys(epidemic_journeys, kind="delivered",
                              node=target.destination,
                              message=target.message_id)
        assert [j.message_id for j in both] == [target.message_id]

    def test_time_window_uses_activity_overlap(self, epidemic_journeys):
        target = next(j for j in epidemic_journeys if j.delivered)
        inside = query_journeys(epidemic_journeys,
                                message=target.message_id,
                                since=target.created_t,
                                until=target.created_t)
        assert len(inside) == 1
        after_everything = query_journeys(
            epidemic_journeys, message=target.message_id,
            since=target.delivery_time + 1.0)
        assert after_everything == []

    def test_lossy_and_dropped_kinds(self):
        journeys = _journeys_for(
            "Epidemic",
            ResourceConstraints(buffer_capacity=3,
                                channel=ChannelSpec(loss=0.3)))
        lossy = query_journeys(journeys, kind="lossy")
        dropped = query_journeys(journeys, kind="dropped")
        assert all(j.losses for j in lossy)
        assert all(j.drops for j in dropped)
        assert len(lossy) > 0 and len(dropped) > 0

    def test_unknown_kind_rejected(self, epidemic_journeys):
        with pytest.raises(ValueError, match="unknown journey kind"):
            query_journeys(epidemic_journeys, kind="teleported")
        assert "delivered" in QUERY_KINDS


class TestTraceDiff:
    def test_self_diff_reports_zero_divergences(self, epidemic_journeys):
        """ISSUE 8 acceptance pin: a run diffed against itself is clean."""
        diff = diff_traces(epidemic_journeys, epidemic_journeys)
        assert diff.num_divergences == 0
        assert diff.only_a == [] and diff.only_b == []
        assert diff.divergent == []
        assert "0 divergences" in diff.report()

    def test_self_diff_from_jsonl_files(self, tmp_path):
        from repro.obs import JsonlTracer

        trace, messages = _workload()
        path = tmp_path / "trace.jsonl"
        with JsonlTracer(path) as tracer:
            ForwardingSimulator(trace, algorithm_by_name("Epidemic"),
                                tracer=tracer).run(messages)
        diff = diff_traces(path, path)
        assert diff.num_divergences == 0

    def test_cross_protocol_diff_finds_gap(self, epidemic_journeys):
        greedy = _journeys_for("Greedy")
        diff = diff_traces(epidemic_journeys, greedy,
                           label_a="Epidemic", label_b="Greedy")
        # Epidemic floods, so it dominates Greedy's delivery set here
        assert greedy.num_delivered < epidemic_journeys.num_delivered
        assert len(diff.only_a) >= (epidemic_journeys.num_delivered
                                    - greedy.num_delivered)
        costly = diff.costly_drops()
        assert sum(costly["a_delivered_b_failed"].values()) == \
            len(diff.only_a)
        assert "Epidemic" in diff.report()

    def test_lossy_diff_blames_losses(self, epidemic_journeys):
        lossy = _journeys_for(
            "Epidemic", ResourceConstraints(channel=ChannelSpec(loss=0.4)))
        diff = diff_traces(epidemic_journeys, lossy,
                           label_a="ideal", label_b="lossy")
        assert lossy.num_delivered <= epidemic_journeys.num_delivered
        costly = diff.costly_drops()["a_delivered_b_failed"]
        # the ideal-only deliveries must be explained by channel faults,
        # not by invented reasons outside the taxonomy
        allowed = {"loss", "never_reached", "expired", "evicted",
                   "rejected", "source_rejected", "churn", "cancelled"}
        assert set(costly) <= allowed
        assert sum(costly.values()) == len(diff.only_a)

    def test_delay_waterfall_decomposes_means(self, epidemic_journeys):
        diff = diff_traces(epidemic_journeys, epidemic_journeys,
                           label_a="L", label_b="R")
        waterfall = diff.delay_waterfall()
        side = waterfall["L"]
        assert side == waterfall["R"]
        assert side["delivered"] == epidemic_journeys.num_delivered
        assert side["mean_delay_s"] == pytest.approx(
            side["mean_wait_s"] + side["mean_transfer_s"])
        assert waterfall["mean_delay_delta_s"] == pytest.approx(0.0)

    def test_as_dict_is_json_ready(self, epidemic_journeys):
        import json

        diff = diff_traces(epidemic_journeys,
                           _journeys_for("Greedy"))
        payload = json.loads(json.dumps(diff.as_dict()))
        assert payload["num_divergences"] == diff.num_divergences
        assert payload["delivered_a"] == epidemic_journeys.num_delivered


class TestExplain:
    @pytest.fixture(scope="class")
    def traced_tournament(self, tmp_path_factory):
        from repro.obs.telemetry import ObsConfig
        from repro.routing.tournament import run_tournament

        trace_dir = tmp_path_factory.mktemp("traces")
        result = run_tournament(
            protocols=["Epidemic", "Direct Delivery"],
            scenarios=["paper-ttl-tight"], seeds=[7],
            obs=ObsConfig(trace_dir=str(trace_dir)))
        return result, trace_dir

    def test_match_protocol_jobs_pairs_coordinates(self, traced_tournament):
        result, _trace_dir = traced_tournament
        pairs = match_protocol_jobs(result.plan, "Epidemic",
                                    "Direct Delivery")
        assert pairs
        for job_a, job_b in pairs:
            assert job_a.protocol == "Epidemic"
            assert job_b.protocol == "Direct Delivery"
            assert job_a.scenario_key == job_b.scenario_key
            assert job_a.seed == job_b.seed
            assert job_a.run_index == job_b.run_index
            assert job_a.job_hash != job_b.job_hash

    def test_explain_matches_leaderboard(self, traced_tournament):
        result, trace_dir = traced_tournament
        explanation = result.explain("Epidemic", "Direct Delivery",
                                     trace_dir=trace_dir)
        by_name = {row["protocol"]: row
                   for row in result.leaderboard_rows()}
        assert explanation.deliveries_a == \
            by_name["Epidemic"]["delivered"]
        assert explanation.deliveries_b == \
            by_name["Direct Delivery"]["delivered"]
        report = explanation.report()
        assert "Epidemic" in report and "Direct Delivery" in report

    def test_explain_from_rebuilt_plan(self, traced_tournament):
        """obs explain rebuilds the plan after the fact: job hashes are
        content-addressed, so a fresh 2-protocol plan names exactly the
        trace files the tournament wrote."""
        from repro.exp.plan import build_plan
        from repro.exp.spec import ExperimentSpec

        result, trace_dir = traced_tournament
        spec = ExperimentSpec(name="tournament",
                              scenarios=("paper-ttl-tight",),
                              protocols=("Epidemic", "Direct Delivery"),
                              seeds=(7,))
        explanation = explain_protocol_gap(build_plan(spec), trace_dir,
                                           "Epidemic", "Direct Delivery")
        assert explanation.deliveries_a == \
            result.explain("Epidemic", "Direct Delivery",
                           trace_dir=trace_dir).deliveries_a

    def test_missing_trace_raises_with_job_context(self, traced_tournament,
                                                   tmp_path):
        result, _trace_dir = traced_tournament
        with pytest.raises(FileNotFoundError, match="was the run traced"):
            result.explain("Epidemic", "Direct Delivery",
                           trace_dir=tmp_path)  # empty dir

    def test_unmatched_protocols_raise(self, traced_tournament):
        result, trace_dir = traced_tournament
        with pytest.raises(ValueError):
            result.explain("Epidemic", "PRoPHET", trace_dir=trace_dir)
