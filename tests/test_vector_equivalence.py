"""Engine equivalence: the vector kernel vs the DES engine.

``engine="vector"`` promises *delivery-stream equivalence*: the same
delivery set, the same delivery times, the same hop counts, the same copy
counts and the same resource-stat counters as :class:`repro.sim.
DesSimulator` on identical inputs.  This suite enforces that on all four
paper dataset stand-ins for every fast-path protocol, across the
constraint space the kernel handles natively (buffers with all three drop
policies, ttl, message sizes, hand-off semantics, continued flooding),
through the lifecycle-hook fallback for protocols without a fast path,
and through the wholesale delegation to DES for bandwidth/fault
configurations.  Hypothesis drives the timing edge cases: batches of
same-timestamp contacts must tie-break exactly like the DES event heap.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.contacts import Contact, ContactTrace
from repro.datasets import PAPER_DATASET_KEYS, load_dataset
from repro.forwarding import Message, PoissonMessageWorkload
from repro.obs import JsonlTracer
from repro.routing.registry import protocol_by_name, protocol_catalogue, protocol_names
from repro.sim import (
    DesSimulator,
    ResourceConstraints,
    UNCONSTRAINED,
    VectorSimulator,
    run_scenario,
    simulate_vector,
)
from repro.sim.faults import ChannelSpec

_SCALE = 0.15
_RATE = 0.01

FASTPATH_PROTOCOLS = [name for name in protocol_names()
                      if protocol_by_name(name).vector_fastpath]
HOOK_ONLY_PROTOCOLS = [name for name in protocol_names()
                       if not protocol_by_name(name).vector_fastpath]


def _assert_results_equal(reference, candidate, context=""):
    assert candidate.algorithm == reference.algorithm, context
    assert candidate.trace_name == reference.trace_name, context
    assert len(candidate.outcomes) == len(reference.outcomes), context
    for position, (expected, actual) in enumerate(
            zip(reference.outcomes, candidate.outcomes)):
        where = f"{context} message {expected.message.id} (#{position})"
        assert actual.message == expected.message, where
        assert actual.delivered == expected.delivered, where
        assert actual.delivery_time == expected.delivery_time, where
        assert actual.hop_count == expected.hop_count, where
    assert candidate.copies_sent == reference.copies_sent, context
    assert candidate.stats.as_dict() == reference.stats.as_dict(), context


def _run_both(trace, messages, protocol_name, **options):
    reference = DesSimulator(trace, protocol_by_name(protocol_name),
                             **options).run(messages)
    candidate = VectorSimulator(trace, protocol_by_name(protocol_name),
                                **options).run(messages)
    return reference, candidate


def _workload(trace, seed=11):
    return PoissonMessageWorkload(rate=_RATE).generate(trace, seed=seed)


# ----------------------------------------------------------------------
# the paper stand-ins
# ----------------------------------------------------------------------
@pytest.mark.parametrize("dataset_key", PAPER_DATASET_KEYS)
def test_vector_equals_des_on_paper_standins(dataset_key):
    """Delivery streams match on every stand-in, every fast-path protocol."""
    trace = load_dataset(dataset_key, scale=_SCALE, contact_scale=_SCALE)
    messages = _workload(trace)
    assert messages, "workload must not be empty for the test to mean anything"
    for protocol_name in FASTPATH_PROTOCOLS:
        reference, candidate = _run_both(trace, messages, protocol_name)
        _assert_results_equal(reference, candidate,
                              context=f"{dataset_key} {protocol_name}")


@pytest.mark.parametrize("constraints", [
    ResourceConstraints(buffer_capacity=3.0),
    ResourceConstraints(buffer_capacity=3.0, drop_policy="drop-youngest"),
    ResourceConstraints(buffer_capacity=120.0, message_size=30.0,
                        drop_policy="drop-largest"),
    ResourceConstraints(ttl=900.0),
    ResourceConstraints(buffer_capacity=4.0, ttl=1200.0),
], ids=["drop-oldest", "drop-youngest", "drop-largest", "ttl", "buffer+ttl"])
def test_vector_equals_des_under_native_constraints(constraints):
    """Buffers (all drop policies), sizes and ttl run natively, not via
    delegation — the streams and stat counters must still match."""
    trace = load_dataset("conext06-9-12", scale=_SCALE, contact_scale=_SCALE)
    messages = _workload(trace, seed=23)
    for protocol_name in ("Epidemic", "Binary Spray-and-Wait"):
        reference, candidate = _run_both(trace, messages, protocol_name,
                                         constraints=constraints)
        _assert_results_equal(reference, candidate,
                              context=f"{constraints} {protocol_name}")


def test_vector_equals_des_with_handoff_and_no_stop():
    trace = load_dataset("infocom06-3-6", scale=_SCALE, contact_scale=_SCALE)
    messages = _workload(trace, seed=31)
    for options in ({"copy_semantics": "handoff"},
                    {"stop_on_delivery": False},
                    {"copy_semantics": "handoff", "stop_on_delivery": False}):
        for protocol_name in ("Epidemic", "First Contact"):
            reference, candidate = _run_both(trace, messages, protocol_name,
                                             **options)
            _assert_results_equal(reference, candidate,
                                  context=f"{options} {protocol_name}")


def test_vector_falls_back_to_hooks_for_stateful_protocols():
    """Protocols without a fast path (PRoPHET et al.) run through the
    lifecycle-hook API inside the vector kernel — same streams as DES."""
    trace = load_dataset("infocom06-9-12", scale=_SCALE, contact_scale=_SCALE)
    messages = _workload(trace, seed=41)
    assert "PRoPHET" in HOOK_ONLY_PROTOCOLS
    for protocol_name in ("PRoPHET", "Greedy"):
        reference, candidate = _run_both(trace, messages, protocol_name)
        _assert_results_equal(reference, candidate, context=protocol_name)


def test_vector_delegates_bandwidth_and_fault_runs_to_des():
    """Bandwidth/channel constraints delegate wholesale — the vector
    entry point must produce DES's exact results there too."""
    trace = load_dataset("conext06-3-6", scale=_SCALE, contact_scale=_SCALE)
    messages = _workload(trace, seed=47)
    for constraints in (
            ResourceConstraints(bandwidth=2.0, message_size=300.0),
            ResourceConstraints(channel=ChannelSpec(loss=0.2, delay=1.0)),
    ):
        reference = DesSimulator(trace, protocol_by_name("Epidemic"),
                                 constraints=constraints, seed=9).run(messages)
        candidate = VectorSimulator(trace, protocol_by_name("Epidemic"),
                                    constraints=constraints, seed=9).run(messages)
        _assert_results_equal(reference, candidate, context=str(constraints))


# ----------------------------------------------------------------------
# hypothesis: timing edge cases
# ----------------------------------------------------------------------
@st.composite
def tie_heavy_workloads(draw):
    """A small trace plus messages whose timestamps all land on a coarse
    grid, so same-instant contact starts/ends/creations are the norm."""
    num_nodes = draw(st.integers(min_value=3, max_value=8))
    contacts = []
    for _ in range(draw(st.integers(min_value=1, max_value=20))):
        a = draw(st.integers(min_value=0, max_value=num_nodes - 1))
        b = draw(st.integers(min_value=0, max_value=num_nodes - 2))
        if b >= a:
            b += 1
        start = 10.0 * draw(st.integers(min_value=0, max_value=8))
        length = 10.0 * draw(st.integers(min_value=0, max_value=3))
        contacts.append(Contact(start, start + length, a, b))
    messages = []
    for index in range(draw(st.integers(min_value=1, max_value=6))):
        source = draw(st.integers(min_value=0, max_value=num_nodes - 1))
        destination = draw(st.integers(min_value=0, max_value=num_nodes - 2))
        if destination >= source:
            destination += 1
        messages.append(Message(
            id=index, source=source, destination=destination,
            creation_time=10.0 * draw(st.integers(min_value=0, max_value=10)),
            ttl=draw(st.sampled_from([None, 20.0, 40.0]))))
    trace = ContactTrace(contacts, nodes=range(num_nodes), duration=120.0,
                         name="hyp")
    return trace, messages


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(payload=tie_heavy_workloads())
def test_same_timestamp_batches_tie_break_like_the_des_heap(payload):
    """Simultaneous contact starts/ends and creations must process in the
    DES event-heap order — deliveries, hops and copies all agree."""
    trace, messages = payload
    for protocol_name in ("Epidemic", "Binary Spray-and-Wait"):
        reference, candidate = _run_both(trace, messages, protocol_name)
        _assert_results_equal(reference, candidate, context=protocol_name)


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(payload=tie_heavy_workloads())
def test_hook_fallback_agrees_with_des_on_random_workloads(payload):
    """The lifecycle-hook fallback path, property-tested on a protocol
    with real inter-contact state."""
    trace, messages = payload
    reference, candidate = _run_both(trace, messages, "PRoPHET")
    _assert_results_equal(reference, candidate, context="PRoPHET")


# ----------------------------------------------------------------------
# tracing, catalogue, plumbing
# ----------------------------------------------------------------------
def test_traced_vector_run_is_byte_identical_to_des(tmp_path):
    """The buffered tracer preserves the exact event stream: JSONL files
    from both engines match byte for byte."""
    trace = load_dataset("conext06-9-12", scale=_SCALE, contact_scale=_SCALE)
    messages = _workload(trace, seed=53)
    des_path = tmp_path / "des.jsonl"
    vec_path = tmp_path / "vec.jsonl"
    with JsonlTracer(des_path) as tracer:
        DesSimulator(trace, protocol_by_name("Epidemic"),
                     tracer=tracer).run(messages)
    with JsonlTracer(vec_path) as tracer:
        VectorSimulator(trace, protocol_by_name("Epidemic"),
                        tracer=tracer).run(messages)
    assert des_path.read_bytes() == vec_path.read_bytes()


def test_protocol_catalogue_reports_vector_support():
    rows = protocol_catalogue()
    by_name = {row["protocol"]: row["vector"] for row in rows}
    assert by_name["Epidemic"] == "fast-path"
    assert by_name["Binary Spray-and-Wait"] == "fast-path"
    assert by_name["PRoPHET"] != "fast-path"


def test_experiment_spec_rejects_unknown_engine_naming_vector():
    from repro.exp import ExperimentSpec

    with pytest.raises(ValueError, match="des, trace, vector"):
        ExperimentSpec(name="x", scenarios=("paper-ideal",), engine="warp")


def test_run_scenario_with_vector_engine_matches_des():
    vector_run = run_scenario("rwp-courtyard", engine="vector")
    des_run = run_scenario("rwp-courtyard")
    assert vector_run.table_rows() == des_run.table_rows()


def test_simulate_vector_one_shot_wrapper():
    trace = ContactTrace([Contact(0.0, 10.0, 0, 1), Contact(20.0, 30.0, 1, 2)],
                         nodes=range(3), duration=60.0, name="tiny")
    messages = [Message(id=0, source=0, destination=2, creation_time=0.0)]
    result = simulate_vector(trace, protocol_by_name("Epidemic"), messages)
    assert result.outcomes[0].delivered
    assert result.outcomes[0].delivery_time == 20.0
    assert result.outcomes[0].hop_count == 2


# ----------------------------------------------------------------------
# the columnar trace view the kernel builds on
# ----------------------------------------------------------------------
def test_contact_trace_as_arrays_matches_contacts_and_caches():
    import numpy as np

    contacts = [Contact(5.0, 15.0, 2, 0), Contact(0.0, 10.0, 1, 3),
                Contact(0.0, 0.0, 0, 3)]
    trace = ContactTrace(contacts, nodes=range(4), duration=60.0, name="a")
    starts, ends, a, b = trace.as_arrays()
    # columns follow the trace's canonical (start, end, a, b) sort order
    assert starts.tolist() == [c.start for c in trace]
    assert ends.tolist() == [c.end for c in trace]
    assert a.tolist() == [c.a for c in trace]
    assert b.tolist() == [c.b for c in trace]
    assert np.all(a <= b)  # Contact stores endpoints canonically
    # built once, then cached
    assert trace.as_arrays()[0] is starts
