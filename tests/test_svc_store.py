"""Tests for the sharded result store (:mod:`repro.svc.store`):

  * index-line codec round-trips (hypothesis property over every field
    combination the store can persist);
  * flat -> sharded migration and layout auto-detection;
  * query-filter correctness against a brute-force scan of full record
    bodies on a generated store;
  * incrementally maintained leaderboard aggregates vs recomputation;
  * compaction drops superseded lines while pinning query results
    byte for byte;
  * crash recovery: lost/torn indexes self-heal from the records file,
    torn record tails are ignored;
  * concurrent-writer safety: two processes appending to the same shard.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exp.records import RECORD_SCHEMA
from repro.exp.store import QUERY_FIELDS, ResultStore, record_entry
from repro.sim.cli import main
from repro.svc.store import (
    DEFAULT_SHARD_WIDTH,
    ShardedResultStore,
    create_store,
    decode_index_line,
    encode_index_line,
    is_sharded_root,
    migrate_store,
    open_store,
)


# ----------------------------------------------------------------------
# synthetic RunRecords (shaped so is_decodable/is_failure_record agree)
# ----------------------------------------------------------------------
def job_hash_for(index: int) -> str:
    return hashlib.sha256(f"job-{index}".encode()).hexdigest()


def make_record(job_hash, *, protocol="epidemic", scenario="scn-a", seed=0,
                experiment="study", run_index=0, status="ok",
                messages=3, delivered=2, copies=5):
    if status == "failed":
        return {"schema": RECORD_SCHEMA, "job_hash": job_hash,
                "status": "failed", "experiment": experiment,
                "scenario": scenario, "protocol": protocol, "seed": seed,
                "run_index": run_index, "error": "boom",
                "error_kind": "RuntimeError", "attempts": 1}
    outcomes = []
    for i in range(messages):
        done = i < delivered
        outcomes.append([i, 0, 1, 10.0, 1.0, 900.0, done,
                         10.0 + 60.0 * (i + 1) if done else None,
                         1 if done else 0])
    return {"schema": RECORD_SCHEMA, "job_hash": job_hash, "status": "ok",
            "experiment": experiment, "scenario": scenario,
            "protocol": protocol, "seed": seed, "run_index": run_index,
            "constraints": {},
            "result": {"algorithm": protocol, "trace_name": scenario,
                       "stats": {"copies_sent": copies},
                       "outcomes": outcomes}}


def generated_records():
    """A small mixed grid: 2 protocols x 2 scenarios x 5 seeds + failures."""
    records = []
    index = 0
    for protocol in ("epidemic", "spray"):
        for scenario in ("scn-a", "scn-b"):
            for seed in range(5):
                status = "failed" if (protocol == "spray" and seed == 4) \
                    else "ok"
                records.append(make_record(
                    job_hash_for(index), protocol=protocol,
                    scenario=scenario, seed=seed, status=status,
                    delivered=1 + seed % 3))
                index += 1
    return records


@pytest.fixture
def flat_store(tmp_path):
    store = ResultStore(tmp_path / "flat")
    for record in generated_records():
        store.put(record)
    return store


@pytest.fixture
def sharded_store(flat_store, tmp_path):
    migrate_store(flat_store.root, tmp_path / "sharded")
    return ShardedResultStore(tmp_path / "sharded")


# ----------------------------------------------------------------------
# index-line codec
# ----------------------------------------------------------------------
ENTRY_STRATEGY = st.fixed_dictionaries(
    {"job_hash": st.text("0123456789abcdef", min_size=8, max_size=64),
     "offset": st.integers(min_value=0, max_value=2 ** 40),
     "length": st.integers(min_value=1, max_value=2 ** 20),
     "status": st.sampled_from(["ok", "failed", "weird"]),
     "decodable": st.booleans(),
     "failed": st.booleans()},
    optional={
        "experiment": st.text(max_size=20),
        "scenario": st.text(max_size=20),
        "protocol": st.text(max_size=20),
        "seed": st.integers(-2 ** 31, 2 ** 31),
        "run_index": st.integers(0, 10_000),
        "error_kind": st.text(max_size=12),
        "error": st.text(max_size=40),
        "attempts": st.integers(1, 9),
        "messages": st.integers(0, 10 ** 6),
        "delivered": st.integers(0, 10 ** 6),
        "delay_sum": st.floats(allow_nan=False, allow_infinity=False),
        "copies": st.integers(0, 10 ** 6),
    })


class TestIndexCodec:
    @settings(max_examples=200, deadline=None)
    @given(entry=ENTRY_STRATEGY)
    def test_round_trip(self, entry):
        line = encode_index_line(entry)
        assert line.endswith(b"\n") and b"\n" not in line[:-1]
        assert decode_index_line(line[:-1]) == entry

    def test_real_entries_round_trip(self):
        for record in generated_records():
            entry = record_entry(record)
            entry["offset"] = 123
            entry["length"] = 456
            assert decode_index_line(encode_index_line(entry)) == entry

    def test_damaged_lines_decode_to_none(self):
        assert decode_index_line(b"not json") is None
        assert decode_index_line(b"[1,2,3]") is None
        assert decode_index_line(b'{"o": 1}') is None  # no hash

    def test_unknown_fields_are_skipped_not_fatal(self):
        line = b'{"h": "abc", "o": 0, "l": 5, "zz": "future"}'
        entry = decode_index_line(line)
        assert entry["job_hash"] == "abc"
        assert "zz" not in entry
        # booleans default off when the compact line omits them
        assert entry["decodable"] is False and entry["failed"] is False


# ----------------------------------------------------------------------
# migration + layout detection
# ----------------------------------------------------------------------
class TestMigration:
    def test_migrates_every_surviving_record(self, flat_store, tmp_path):
        report = migrate_store(flat_store.root, tmp_path / "sharded")
        assert report["migrated"] == len(flat_store)
        store = ShardedResultStore(tmp_path / "sharded")
        assert len(store) == len(flat_store)
        for job_hash in flat_store.hashes():
            assert store.get(job_hash) == flat_store.get(job_hash)

    def test_open_store_auto_detects_layout(self, flat_store, tmp_path):
        migrate_store(flat_store.root, tmp_path / "sharded")
        assert isinstance(open_store(tmp_path / "sharded"),
                          ShardedResultStore)
        assert isinstance(open_store(flat_store.root), ResultStore)
        assert is_sharded_root(tmp_path / "sharded")
        assert not is_sharded_root(flat_store.root)

    def test_migrating_a_sharded_source_is_refused(self, sharded_store,
                                                   tmp_path):
        with pytest.raises(ValueError, match="already a sharded store"):
            migrate_store(sharded_store.root, tmp_path / "other")

    def test_create_store_keeps_existing_flat_layout(self, flat_store,
                                                     tmp_path):
        assert isinstance(create_store(flat_store.root), ResultStore)
        fresh = create_store(tmp_path / "brand-new")
        assert isinstance(fresh, ShardedResultStore)
        assert is_sharded_root(tmp_path / "brand-new")

    def test_shard_fanout_uses_hash_prefix(self, sharded_store):
        for job_hash in sharded_store.hashes():
            prefix = job_hash[:DEFAULT_SHARD_WIDTH]
            path = sharded_store.path / prefix / "records.jsonl"
            assert path.exists()
            raw = path.read_bytes()
            assert job_hash.encode() in raw


# ----------------------------------------------------------------------
# query correctness vs brute force
# ----------------------------------------------------------------------
def brute_force(store, **filters):
    hashes = set()
    for record in store.records():
        if all(record.get(field) == value
               for field, value in filters.items() if value is not None):
            hashes.add(record["job_hash"])
    return hashes


class TestQueryCorrectness:
    def test_every_filter_combination_matches_brute_force(self,
                                                          sharded_store):
        values = {"scenario": (None, "scn-a", "scn-b", "missing"),
                  "protocol": (None, "epidemic", "spray"),
                  "seed": (None, 0, 4),
                  "status": (None, "ok", "failed")}
        for scenario in values["scenario"]:
            for protocol in values["protocol"]:
                for seed in values["seed"]:
                    for status in values["status"]:
                        filters = {"scenario": scenario,
                                   "protocol": protocol,
                                   "seed": seed, "status": status}
                        expected = brute_force(sharded_store, **filters)
                        got = {entry["job_hash"] for entry in
                               sharded_store.query_entries(**filters)}
                        assert got == expected, filters

    def test_entries_and_bodies_agree(self, sharded_store):
        entries = sharded_store.query_entries(protocol="epidemic")
        bodies = sharded_store.query(protocol="epidemic")
        assert [e["job_hash"] for e in entries] == \
            [r["job_hash"] for r in bodies]
        assert all(r["protocol"] == "epidemic" for r in bodies)

    def test_limit_and_deterministic_order(self, sharded_store):
        all_rows = sharded_store.query_entries()
        hashes = [entry["job_hash"] for entry in all_rows]
        assert hashes == sorted(hashes)
        assert sharded_store.query_entries(limit=3) == all_rows[:3]

    def test_experiment_filter(self, sharded_store):
        assert len(sharded_store.query_entries(experiment="study")) == \
            len(sharded_store)
        assert sharded_store.query_entries(experiment="nope") == []

    def test_query_fields_stay_in_sync_with_api(self):
        assert set(QUERY_FIELDS) == {"scenario", "protocol", "seed",
                                     "status", "experiment"}


# ----------------------------------------------------------------------
# aggregates
# ----------------------------------------------------------------------
class TestLeaderboard:
    def test_matches_flat_store(self, flat_store, sharded_store):
        assert sharded_store.leaderboard() == flat_store.leaderboard()

    def test_supersede_folds_aggregates_incrementally(self, sharded_store):
        target = next(entry["job_hash"]
                      for entry in sharded_store.entries()
                      if entry["protocol"] == "epidemic"
                      and entry["decodable"])
        before = {row["protocol"]: row for row in
                  sharded_store.leaderboard()}
        # retry the job as a failure: it must leave the epidemic pool
        record = sharded_store.get(target)
        sharded_store.put(make_record(
            target, protocol=record["protocol"],
            scenario=record["scenario"], seed=record["seed"],
            status="failed"))
        after = {row["protocol"]: row for row in sharded_store.leaderboard()}
        assert after["epidemic"]["jobs"] == before["epidemic"]["jobs"] - 1
        assert after["spray"] == \
            {**before["spray"], "rank": after["spray"]["rank"]}
        # and a fresh handle (reading only index lines) agrees
        reread = ShardedResultStore(sharded_store.root)
        assert reread.leaderboard() == sharded_store.leaderboard()

    def test_flush_persists_aggregate_cache(self, sharded_store):
        sharded_store.flush()
        payload = json.loads(
            (sharded_store.root / "aggregates.json").read_text())
        assert payload["leaderboard"] == sharded_store.leaderboard()


# ----------------------------------------------------------------------
# refresh: second handle sees appended records incrementally
# ----------------------------------------------------------------------
class TestRefresh:
    def test_refresh_picks_up_appends_from_another_handle(self,
                                                          sharded_store):
        reader = ShardedResultStore(sharded_store.root)
        reader.load()
        new_hash = job_hash_for(999)
        sharded_store.put(make_record(new_hash, seed=99))
        fresh = reader.refresh_entries()
        assert [entry["job_hash"] for entry in fresh] == [new_hash]
        assert new_hash in reader
        assert reader.refresh_entries() == []

    def test_refresh_discovers_new_shards(self, tmp_path):
        writer = create_store(tmp_path / "store")
        reader = ShardedResultStore(tmp_path / "store")
        reader.load()
        writer.put(make_record(job_hash_for(1)))
        fresh = reader.refresh_entries()
        assert len(fresh) == 1 and len(reader) == 1

    def test_refresh_survives_external_compaction(self, sharded_store):
        reader = ShardedResultStore(sharded_store.root)
        reader.load()
        target = sharded_store.hashes()[0]
        sharded_store.put(make_record(target, status="failed"))
        sharded_store.compact()  # shrinks index files under the reader
        reader.refresh_entries()
        assert len(reader) == len(sharded_store)
        assert reader.entry_for(target)["failed"] is True


# ----------------------------------------------------------------------
# compaction: byte-identical query results, superseded lines dropped
# ----------------------------------------------------------------------
def query_fingerprint(store):
    """Every query surface serialized to bytes (entries modulo the
    physical offset/length, which compaction legitimately rewrites)."""
    entries = [{key: value for key, value in sorted(entry.items())
                if key not in ("offset", "length")}
               for entry in store.query_entries()]
    return (json.dumps(entries, sort_keys=True).encode(),
            json.dumps(store.query(), sort_keys=True).encode(),
            json.dumps(store.leaderboard(), sort_keys=True).encode(),
            json.dumps(store.query(protocol="spray", status="failed"),
                       sort_keys=True).encode())


class TestCompaction:
    def test_compaction_preserves_queries_byte_for_byte(self, sharded_store):
        # supersede two records (a retry and a duplicate append)
        retried = next(entry["job_hash"]
                       for entry in sharded_store.entries()
                       if entry["failed"])
        sharded_store.put(make_record(retried, protocol="spray",
                                      scenario=sharded_store.entry_for(
                                          retried)["scenario"],
                                      seed=4, status="ok"))
        duplicate = sharded_store.hashes()[0]
        sharded_store.put(sharded_store.get(duplicate))
        before = query_fingerprint(sharded_store)
        report = sharded_store.compact()
        assert report["records_dropped"] == 2
        assert report["records_kept"] == len(sharded_store)
        assert report["bytes_after"] <= report["bytes_before"]
        assert query_fingerprint(sharded_store) == before
        # a cold open of the compacted layout answers identically too
        assert query_fingerprint(ShardedResultStore(sharded_store.root)) \
            == before

    def test_compacting_a_clean_store_drops_nothing(self, sharded_store):
        count = len(sharded_store)
        report = sharded_store.compact()
        assert report["records_dropped"] == 0
        assert report["records_kept"] == count == len(sharded_store)


# ----------------------------------------------------------------------
# recovery: advisory index, authoritative records file
# ----------------------------------------------------------------------
class TestRecovery:
    def test_deleted_index_rebuilds_from_records(self, sharded_store):
        expected = query_fingerprint(sharded_store)
        for index_path in sharded_store.path.glob("*/index.jsonl"):
            index_path.unlink()
        recovered = ShardedResultStore(sharded_store.root)
        assert query_fingerprint(recovered) == expected
        # the self-heal re-wrote the index files
        assert list(sharded_store.path.glob("*/index.jsonl"))

    def test_torn_index_tail_recovers_missing_entries(self, sharded_store):
        expected = len(sharded_store)
        index_path = next(iter(sharded_store.path.glob("*/index.jsonl")))
        raw = index_path.read_bytes()
        index_path.write_bytes(raw[:-max(4, len(raw) // 3)])
        recovered = ShardedResultStore(sharded_store.root)
        assert len(recovered) == expected
        for job_hash in recovered.hashes():
            assert recovered.get(job_hash) is not None

    def test_torn_record_tail_is_ignored(self, sharded_store):
        expected = len(sharded_store)
        records_path = next(iter(
            sharded_store.path.glob("*/records.jsonl")))
        with open(records_path, "ab") as handle:
            handle.write(b'{"job_hash": "abc", "trunc')
        recovered = ShardedResultStore(sharded_store.root)
        assert len(recovered) == expected
        # the next writer closes the torn line before appending
        writer = ShardedResultStore(sharded_store.root)
        writer.put(make_record(job_hash_for(1000)))
        final = ShardedResultStore(sharded_store.root)
        assert len(final) == expected + 1
        assert final.get(job_hash_for(1000)) is not None

    def test_stale_index_entry_falls_back_to_rescan(self, sharded_store):
        # rewrite a records file under the store's feet (offsets shift)
        target = sharded_store.hashes()[0]
        prefix = target[:DEFAULT_SHARD_WIDTH]
        records_path = sharded_store.path / prefix / "records.jsonl"
        lines = records_path.read_bytes().splitlines(keepends=True)
        records_path.write_bytes(b"".join([b"\n"] + lines))
        record = sharded_store.get(target)
        assert record is not None and record["job_hash"] == target


# ----------------------------------------------------------------------
# concurrent writers: two processes, one shard namespace
# ----------------------------------------------------------------------
_WRITER_SCRIPT = """
import sys
sys.path.insert(0, {src!r})
from test_svc_store import make_record
from repro.svc.store import ShardedResultStore

store = ShardedResultStore({root!r})
store.load()
for i in range({start}, {start} + {count}):
    # one shared prefix: every record contends on the same shard files
    store.put(make_record("aa%060x" % i, seed=i))
"""


class TestConcurrentWriters:
    def test_two_processes_appending_to_one_shard(self, tmp_path):
        root = create_store(tmp_path / "store").root
        src = str(Path(__file__).resolve().parents[1] / "src")
        env = dict(os.environ,
                   PYTHONPATH=os.pathsep.join(
                       [src, str(Path(__file__).resolve().parent)]))
        count = 150
        procs = [subprocess.Popen(
            [sys.executable, "-c", _WRITER_SCRIPT.format(
                src=src, root=str(root), start=start, count=count)],
            env=env, cwd=str(Path(__file__).resolve().parent))
            for start in (0, count)]
        for proc in procs:
            assert proc.wait(timeout=120) == 0
        store = ShardedResultStore(root)
        assert len(store) == 2 * count
        # every record body is addressable through its index entry
        for i in range(2 * count):
            record = store.get("aa%060x" % i)
            assert record is not None and record["seed"] == i
        # no interleaving corrupted the shard: one JSON object per line
        records_path = store.path / "aa" / "records.jsonl"
        for line in records_path.read_bytes().splitlines():
            if line.strip():
                json.loads(line)


# ----------------------------------------------------------------------
# the svc CLI, offline surfaces
# ----------------------------------------------------------------------
class TestOfflineCli:
    def test_migrate_query_leaderboard_compact(self, flat_store, tmp_path,
                                               capsys):
        dst = tmp_path / "sharded"
        assert main(["svc", "migrate", str(flat_store.root),
                     str(dst)]) == 0
        out = tmp_path / "query.json"
        assert main(["svc", "query", "--store", str(dst),
                     "--protocol", "epidemic", "--json", str(out)]) == 0
        rows = json.loads(out.read_text())
        assert {entry["job_hash"] for entry in rows} == \
            brute_force(flat_store, protocol="epidemic")
        board = tmp_path / "board.json"
        assert main(["svc", "leaderboard", "--store", str(dst),
                     "--json", str(board)]) == 0
        assert json.loads(board.read_text()) == flat_store.leaderboard()
        assert main(["svc", "compact", "--store", str(dst)]) == 0
        assert "dropped 0 superseded" in capsys.readouterr().out

    def test_compact_refuses_flat_stores(self, flat_store):
        with pytest.raises(SystemExit, match="not a sharded store"):
            main(["svc", "compact", "--store", str(flat_store.root)])

    def test_migrate_refuses_missing_source(self, tmp_path):
        with pytest.raises(SystemExit, match="no store"):
            main(["svc", "migrate", str(tmp_path / "nope"),
                  str(tmp_path / "dst")])
