"""End-to-end tests for the orchestration layer: resumable runs, incremental
grid extension, serial/parallel determinism (including through the three
legacy entrypoints) and the ``python -m repro exp`` CLI."""

from __future__ import annotations

import json

import pytest

from repro.exp.orchestrator import (
    execute_plan,
    experiment_status,
    run_experiment,
)
from repro.exp.plan import build_plan
from repro.exp.records import decode_result
from repro.exp.spec import ExperimentSpec, SweepAxis
from repro.exp.store import ResultStore
from repro.routing.tournament import run_tournament
from repro.sim.cli import main
from repro.sim.runner import run_scenario, sweep_scenario

SMALL_SPEC = ExperimentSpec(
    name="small", scenarios=("paper-ttl-tight",),
    protocols=("Epidemic", "Direct Delivery"), seeds=(7,), num_runs=1)


class TestResume:
    def test_rerunning_a_completed_spec_executes_zero_jobs(self, tmp_path):
        store = tmp_path / "results"
        first = run_experiment(SMALL_SPEC, store=store)
        assert first.num_executed == len(first.plan) == 2
        again = run_experiment(SMALL_SPEC, store=store)
        assert again.num_executed == 0
        assert again.num_reused == 2
        assert again.table_rows() == first.table_rows()

    def test_extending_the_grid_runs_only_the_delta(self, tmp_path):
        store = tmp_path / "results"
        run_experiment(SMALL_SPEC, store=store)
        grown = SMALL_SPEC.with_overrides(
            seeds=(7, 8),
            protocols=("Epidemic", "Direct Delivery", "First Contact"))
        extended = run_experiment(grown, store=store)
        assert len(extended.plan) == 6
        assert extended.num_reused == 2     # the original seed-7 pair
        assert extended.num_executed == 4   # new seed + new protocol cells

    def test_renaming_the_experiment_reuses_the_store(self, tmp_path):
        store = tmp_path / "results"
        run_experiment(SMALL_SPEC, store=store)
        renamed = SMALL_SPEC.with_overrides(name="same-content-new-name")
        assert run_experiment(renamed, store=store).num_executed == 0

    def test_fresh_run_ignores_but_rewrites_the_store(self, tmp_path):
        store = ResultStore(tmp_path / "results")
        run_experiment(SMALL_SPEC, store=store)
        fresh = run_experiment(SMALL_SPEC, store=store, resume=False)
        assert fresh.num_executed == 2
        assert fresh.num_reused == 0
        assert len(ResultStore(store.root)) == 2  # last write wins, no dupes

    def test_reused_records_decode_to_the_simulated_results(self, tmp_path):
        store = tmp_path / "results"
        first = run_experiment(SMALL_SPEC, store=store)
        again = run_experiment(SMALL_SPEC, store=store)
        for job in first.plan.jobs:
            assert again.result_for(job) == first.result_for(job)

    def test_interrupted_run_keeps_completed_records(self, tmp_path, monkeypatch):
        """Records persist as each job finishes, so a crash mid-run loses
        only the in-flight job and resume re-executes just the tail."""
        import repro.exp.orchestrator as orchestrator

        store = ResultStore(tmp_path / "results")
        real_run = orchestrator._run_exp_job
        calls = {"n": 0}

        def explode_on_second(payload):
            calls["n"] += 1
            if calls["n"] == 2:
                raise KeyboardInterrupt
            return real_run(payload)

        monkeypatch.setattr(orchestrator, "_run_exp_job", explode_on_second)
        with pytest.raises(KeyboardInterrupt):
            run_experiment(SMALL_SPEC, store=store)
        assert len(ResultStore(store.root)) == 1  # first job survived
        monkeypatch.setattr(orchestrator, "_run_exp_job", real_run)
        resumed = run_experiment(SMALL_SPEC, store=store)
        assert resumed.num_executed == 1
        assert resumed.num_reused == 1

    def test_duplicate_seeds_do_not_double_pool_tournament_cells(self):
        doubled = run_tournament(protocols=("Epidemic",),
                                 scenarios=("paper-ideal",), seeds=(7, 7))
        single = run_tournament(protocols=("Epidemic",),
                                scenarios=("paper-ideal",), seeds=(7,))
        assert doubled.cells[("Epidemic", "paper-ideal", 7)].num_messages == \
            single.cells[("Epidemic", "paper-ideal", 7)].num_messages

    def test_undecodable_stored_record_warns_and_reruns(self, tmp_path):
        """A record this build cannot decode (e.g. a future schema, or a
        store merged from another version) must warn and re-run that job,
        not fail the whole resumed run."""
        import json as json_module

        store = ResultStore(tmp_path / "results")
        run_experiment(SMALL_SPEC, store=store)
        records = list(ResultStore(store.root).records())
        records[0] = dict(records[0], schema=999)
        store.path.write_text("".join(
            json_module.dumps(record) + "\n" for record in records))
        reopened = ResultStore(store.root)
        with pytest.warns(UserWarning, match="not decodable"):
            healed = run_experiment(SMALL_SPEC, store=reopened)
        assert healed.num_executed == 1
        assert healed.num_reused == 1
        # the fresh record overwrote the stale one: next run reuses fully
        assert run_experiment(SMALL_SPEC,
                              store=ResultStore(store.root)).num_executed == 0

    def test_status_agrees_with_run_on_undecodable_records(self, tmp_path):
        import json as json_module

        store = ResultStore(tmp_path / "results")
        run_experiment(SMALL_SPEC, store=store)
        records = list(ResultStore(store.root).records())
        records[0] = dict(records[0], schema=999)
        store.path.write_text("".join(
            json_module.dumps(record) + "\n" for record in records))
        status = experiment_status(SMALL_SPEC, store=ResultStore(store.root))
        assert (status["done"], status["pending"]) == (1, 1)

    def test_status_reports_done_and_pending(self, tmp_path):
        store = tmp_path / "results"
        before = experiment_status(SMALL_SPEC, store=store)
        assert (before["done"], before["pending"]) == (0, 2)
        run_experiment(SMALL_SPEC, store=store)
        after = experiment_status(SMALL_SPEC, store=store)
        assert (after["done"], after["pending"]) == (2, 0)
        assert after["scenarios"]["paper-ttl-tight"]["done"] == 2


class TestDeterminism:
    def test_serial_and_parallel_store_byte_identical_records(self, tmp_path):
        """One spec covering all three legacy grid shapes — multi-scenario,
        multi-protocol, multi-seed, swept constraints, multiple runs — run
        both ways must persist byte-identical JSONL stores."""
        spec = ExperimentSpec(
            name="determinism",
            scenarios=("paper-ttl-tight", "rwp-courtyard-lossy"),
            protocols=("Epidemic", "Binary Spray-and-Wait"),
            seeds=(7, 8), num_runs=2,
            sweep=SweepAxis("buffer_capacity", (4.0, None)))
        serial_store = ResultStore(tmp_path / "serial")
        parallel_store = ResultStore(tmp_path / "parallel")
        serial = run_experiment(spec, store=serial_store)
        parallel = run_experiment(spec, store=parallel_store,
                                  parallel=True, n_workers=2)
        assert serial.num_executed == parallel.num_executed == 32
        assert serial_store.path.read_bytes() == parallel_store.path.read_bytes()

    def test_trace_cache_does_not_change_results(self):
        plan = build_plan(SMALL_SPEC)
        cached = execute_plan(plan, trace_cache=True)
        naive = execute_plan(plan, trace_cache=False)
        for job in plan.jobs:
            assert cached.result_for(job) == naive.result_for(job)

    def test_trace_engine_matches_des_when_unconstrained(self):
        des = run_experiment(ExperimentSpec(
            name="ideal-des", scenarios=("paper-ideal",),
            protocols=("Epidemic",), seeds=(7,)))
        trace = run_experiment(ExperimentSpec(
            name="ideal-trace", scenarios=("paper-ideal",),
            protocols=("Epidemic",), seeds=(7,), engine="trace"))
        a = des.result_for(des.plan.jobs[0])
        b = trace.result_for(trace.plan.jobs[0])
        assert a.outcomes == b.outcomes
        assert a.copies_sent == b.copies_sent
        # different engines are different jobs in the store
        assert des.plan.jobs[0].job_hash != trace.plan.jobs[0].job_hash


class _PlainWorkload:
    """A WorkloadSpec that is deliberately not a dataclass (the Protocol in
    sim.scenarios only requires a seeded ``generate``)."""

    def __init__(self, rate: float = 0.01) -> None:
        self.rate = rate

    def generate(self, trace, seed=None):
        from repro.forwarding import PoissonMessageWorkload

        return PoissonMessageWorkload(rate=self.rate).generate(trace, seed)


class _RngWorkload:
    """Workload with content-addressing-hostile state (an RNG object) —
    legal per the WorkloadSpec protocol and runnable pre-refactor."""

    def __init__(self) -> None:
        import numpy as np

        self._rng = np.random.default_rng(0)  # unhashable content

    def generate(self, trace, seed=None):
        from repro.forwarding import PoissonMessageWorkload

        return PoissonMessageWorkload(rate=0.01).generate(trace, seed)


def test_unhashable_workload_state_still_runs_with_warning(tmp_path):
    """Content that cannot be hashed (RNGs, callables) must not break
    storeless runs — it runs under one-off keys and is never store-reused."""
    from repro.sim.scenarios import get_scenario

    scenario = get_scenario("paper-ideal").with_overrides(
        name="rng-workload", workload=_RngWorkload(),
        algorithms=("Epidemic",))
    with pytest.warns(UserWarning, match="unhashable"):
        result = run_scenario(scenario)
    assert result.num_messages > 0
    # through the store: jobs run every time, nothing is wrongly reused
    spec = ExperimentSpec(name="rng", scenarios=(scenario,))
    store = ResultStore(tmp_path / "results")
    with pytest.warns(UserWarning, match="unhashable"):
        first = run_experiment(spec, store=store)
    with pytest.warns(UserWarning, match="unhashable"):
        second = run_experiment(spec, store=store)
    assert first.num_executed == second.num_executed == 1
    assert second.num_reused == 0


def test_non_dataclass_workloads_still_run_and_hash():
    """run_scenario accepted any WorkloadSpec object before the exp refactor
    and must keep doing so (plain objects hash via their public attrs)."""
    from repro.sim.scenarios import get_scenario

    scenario = get_scenario("paper-ideal").with_overrides(
        name="plain-workload", workload=_PlainWorkload(),
        algorithms=("Epidemic",))
    result = run_scenario(scenario)
    assert result.num_messages > 0
    again = run_scenario(scenario)
    assert result.results == again.results


class TestLegacyEntrypointsThroughExp:
    """The three pre-exp pipelines, serial vs parallel, through the shared
    orchestrator — results must be identical object-for-object."""

    def test_run_scenario(self):
        serial = run_scenario("paper-ttl-tight", num_runs=2)
        parallel = run_scenario("paper-ttl-tight", num_runs=2,
                                parallel=True, n_workers=2)
        assert serial.results.keys() == parallel.results.keys()
        for name in serial.results:
            assert serial.results[name] == parallel.results[name]

    def test_sweep_scenario(self):
        serial = sweep_scenario("paper-buffer-crunch", "buffer_capacity",
                                [2.0, None])
        parallel = sweep_scenario("paper-buffer-crunch", "buffer_capacity",
                                  [2.0, None], parallel=True, n_workers=2)
        assert serial.table_rows() == parallel.table_rows()
        for value in serial.values:
            assert serial.by_value[value] == parallel.by_value[value]

    def test_run_tournament(self):
        kwargs = dict(protocols=("Epidemic", "Direct Delivery"),
                      scenarios=("paper-ttl-tight",), seeds=(7, 8))
        serial = run_tournament(**kwargs)
        parallel = run_tournament(parallel=True, n_workers=2, **kwargs)
        assert serial.cells == parallel.cells
        assert serial.leaderboard_rows() == parallel.leaderboard_rows()


class TestExpCli:
    def test_run_then_resume_reports_zero_executed(self, tmp_path, capsys):
        store = str(tmp_path / "results")
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps({
            "name": "cli-smoke", "scenarios": ["paper-ttl-tight"],
            "protocols": ["Epidemic"], "seeds": [7]}))
        assert main(["exp", "run", str(spec_path), "--store", store]) == 0
        out = capsys.readouterr().out
        assert "executed 1 jobs, reused 0" in out
        assert main(["exp", "resume", str(spec_path), "--store", store]) == 0
        out = capsys.readouterr().out
        assert "executed 0 jobs, reused 1" in out

    def test_status_command(self, tmp_path, capsys):
        store = str(tmp_path / "results")
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps({
            "name": "cli-status", "scenarios": ["paper-ttl-tight"],
            "protocols": ["Epidemic", "Direct Delivery"], "seeds": [7]}))
        assert main(["exp", "status", str(spec_path), "--store", store]) == 0
        out = capsys.readouterr().out
        assert "0/2 jobs done, 0 failed, 2 pending" in out

    def test_json_export_and_sweep_spec(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        payload_path = tmp_path / "rows.json"
        spec_path.write_text(json.dumps({
            "name": "cli-sweep", "scenarios": ["paper-buffer-crunch"],
            "protocols": ["Epidemic"], "seeds": [7],
            "sweep": {"parameter": "buffer_capacity", "values": [4, None]}}))
        assert main(["exp", "run", str(spec_path), "--no-store",
                     "--json", str(payload_path)]) == 0
        payload = json.loads(payload_path.read_text())
        assert payload["executed"] == 2
        assert {row["buffer_capacity"] for row in payload["rows"]} == \
            {4.0, "inf"}

    def test_bad_spec_fails_fast(self, tmp_path):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps({"name": "bad", "scenarios": []}))
        with pytest.raises(SystemExit, match="invalid experiment spec"):
            main(["exp", "run", str(spec_path)])
        with pytest.raises(SystemExit, match="no such spec file"):
            main(["exp", "run", str(tmp_path / "missing.json")])
