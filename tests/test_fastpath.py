"""Tests for the fast-core substrate: interner, bitmasks, and step tables."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.contacts import Contact, ContactTrace
from repro.core import NodeInterner, SpaceTimeGraph, StepTables


class TestNodeInterner:
    def test_dense_sorted_indices(self):
        interner = NodeInterner([30, 10, 20, 10])
        assert interner.nodes == (10, 20, 30)
        assert [interner.index_of(n) for n in (10, 20, 30)] == [0, 1, 2]
        assert [interner.node_at(i) for i in range(3)] == [10, 20, 30]
        assert len(interner) == 3
        assert 20 in interner
        assert 99 not in interner

    def test_unknown_node_raises(self):
        interner = NodeInterner([1, 2])
        with pytest.raises(KeyError):
            interner.index_of(3)

    def test_bit_of_matches_index(self):
        interner = NodeInterner(range(8))
        for node in range(8):
            assert interner.bit_of(node) == 1 << interner.index_of(node)

    def test_mask_of_empty(self):
        interner = NodeInterner(range(4))
        assert interner.mask_of([]) == 0
        assert interner.nodes_of(0) == frozenset()

    def test_nodes_of_rejects_negative_mask(self):
        interner = NodeInterner(range(4))
        with pytest.raises(ValueError):
            interner.nodes_of(-1)

    @given(st.sets(st.integers(min_value=0, max_value=500), min_size=1, max_size=60),
           st.data())
    @settings(max_examples=100, deadline=None)
    def test_mask_round_trip(self, population, data):
        """mask_of and nodes_of are inverse bijections on any subset."""
        interner = NodeInterner(population)
        subset = data.draw(st.sets(st.sampled_from(sorted(population))))
        mask = interner.mask_of(subset)
        assert interner.nodes_of(mask) == frozenset(subset)
        # one bit per member, membership via single AND
        assert bin(mask).count("1") == len(subset)
        for node in population:
            assert bool(mask & interner.bit_of(node)) == (node in subset)

    @given(st.sets(st.integers(min_value=-1000, max_value=1000), min_size=1,
                   max_size=40))
    @settings(max_examples=100, deadline=None)
    def test_index_round_trip(self, population):
        interner = NodeInterner(population)
        assert len(interner) == len(population)
        for node in population:
            assert interner.node_at(interner.index_of(node)) == node
        assert list(interner) == sorted(population)


class TestStepTables:
    @pytest.fixture
    def graph(self) -> SpaceTimeGraph:
        contacts = [
            Contact(0.0, 25.0, 0, 1),   # steps 0-2; stale at steps 1, 2
            Contact(30.0, 40.0, 1, 2),  # step 3
            Contact(40.0, 50.0, 1, 2),  # step 4, back-to-back: stale edge
        ]
        trace = ContactTrace(contacts, nodes=range(4), duration=60.0, name="t")
        return SpaceTimeGraph(trace, delta=10.0)

    def test_tables_cached(self, graph):
        assert graph.step_tables() is graph.step_tables()
        assert graph.interner is graph.step_tables().interner

    def test_neighbor_masks_match_adjacency(self, graph):
        tables = graph.step_tables()
        interner = tables.interner
        for step in range(graph.num_steps):
            adjacency = graph.adjacency(step)
            masks = tables.neighbor_masks[step]
            assert set(masks) == {interner.index_of(n) for n in adjacency}
            for node, peers in adjacency.items():
                mask = masks[interner.index_of(node)]
                assert interner.nodes_of(mask) == frozenset(peers)

    def test_neighbor_lists_preserve_set_order(self, graph):
        tables = graph.step_tables()
        interner = tables.interner
        for step in range(graph.num_steps):
            adjacency = graph.adjacency(step)
            for node, peers in adjacency.items():
                entries = tables.neighbor_lists[step][interner.index_of(node)]
                assert [interner.node_at(i) for i, _ in entries] == list(peers)

    def test_freshness_flags(self, graph):
        tables = graph.step_tables()
        interner = tables.interner
        idx0, idx1 = interner.index_of(0), interner.index_of(1)
        # step 0: edge 0-1 appears -> fresh
        assert dict(tables.neighbor_lists[0][idx0])[idx1] is True
        # steps 1-2: the same contact is ongoing -> stale
        assert dict(tables.neighbor_lists[1][idx0])[idx1] is False
        assert dict(tables.neighbor_lists[2][idx0])[idx1] is False
        # step 4: contact 30-40 ends exactly when 40-50 begins, so the edge
        # is continuously active across the step boundary -> stale
        idx2 = interner.index_of(2)
        assert dict(tables.neighbor_lists[3][idx1])[idx2] is True
        assert dict(tables.neighbor_lists[4][idx1])[idx2] is False

    def test_next_active_skip_index(self, graph):
        tables = graph.step_tables()
        interner = tables.interner
        idx2 = interner.index_of(2)
        # node 2 is active at steps 3 and 4 only
        assert tables.first_active_step(idx2, 0) == 3
        assert tables.first_active_step(idx2, 3) == 3
        assert tables.first_active_step(idx2, 4) == 4
        assert tables.first_active_step(idx2, 5) == graph.num_steps
        assert tables.first_active_step(idx2, 99) == graph.num_steps
        idx3 = interner.index_of(3)  # never active
        assert tables.first_active_step(idx3, 0) == graph.num_steps

    def test_dest_mask_helper(self, graph):
        tables = graph.step_tables()
        interner = tables.interner
        idx1 = interner.index_of(1)
        assert tables.dest_mask(idx1, 0) == interner.mask_of([0])
        assert tables.dest_mask(idx1, 3) == interner.mask_of([2])
        assert tables.dest_mask(interner.index_of(3), 0) == 0


class TestHalfOpenStepBoundaries:
    """The satellite fix: exact half-open arithmetic for contact ends."""

    @staticmethod
    def _graph(contacts, duration=60.0, delta=10.0):
        trace = ContactTrace(contacts, nodes=range(3), duration=duration, name="b")
        return SpaceTimeGraph(trace, delta=delta)

    def test_contact_ending_exactly_on_step_edge(self):
        # [0, 20) is active during steps 0 and 1, NOT step 2: the end
        # instant itself is exclusive.
        graph = self._graph([Contact(0.0, 20.0, 0, 1)])
        assert graph.in_contact(0, 1, 0)
        assert graph.in_contact(0, 1, 1)
        assert not graph.in_contact(0, 1, 2)

    def test_contact_barely_crossing_step_edge(self):
        # The seed's 1e-9 epsilon truncated contacts that extended past a
        # boundary by less than the epsilon; exact arithmetic keeps them.
        end = 20.0 + 1e-10
        graph = self._graph([Contact(0.0, end, 0, 1)])
        assert graph.in_contact(0, 1, 2)

    def test_contact_ending_just_before_step_edge(self):
        graph = self._graph([Contact(0.0, 20.0 - 1e-10, 0, 1)])
        assert graph.in_contact(0, 1, 1)
        assert not graph.in_contact(0, 1, 2)

    def test_contact_within_single_step(self):
        graph = self._graph([Contact(12.0, 18.0, 0, 1)])
        assert not graph.in_contact(0, 1, 0)
        assert graph.in_contact(0, 1, 1)
        assert not graph.in_contact(0, 1, 2)

    def test_zero_duration_contact_still_creates_edge(self):
        graph = self._graph([Contact(30.0, 30.0, 0, 1)])
        assert graph.in_contact(0, 1, 3)
        assert graph.total_contact_edges() == 1

    def test_non_integral_delta_boundary(self):
        # end exactly on a boundary of a non-integral delta
        graph = self._graph([Contact(0.0, 5.0, 0, 1)], duration=10.0, delta=2.5)
        # [0, 5) covers steps 0 and 1 ([0,2.5), [2.5,5)) but not step 2
        assert graph.in_contact(0, 1, 0)
        assert graph.in_contact(0, 1, 1)
        assert not graph.in_contact(0, 1, 2)
