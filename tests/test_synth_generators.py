"""Unit tests for the synthetic trace generators (homogeneous, conference, RWP)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.contacts import describe, rate_uniformity_statistic, stationarity_score
from repro.synth import (
    ConferenceTraceGenerator,
    ConstantProfile,
    HomogeneousPoissonGenerator,
    RandomWaypointModel,
    TaperedProfile,
    contacts_from_positions,
)


class TestHomogeneousPoissonGenerator:
    def test_basic_generation(self):
        generator = HomogeneousPoissonGenerator(num_nodes=10, contact_rate=0.01,
                                                duration=1000.0)
        trace = generator.generate(seed=1)
        assert trace.num_nodes == 10
        assert trace.duration == 1000.0
        assert len(trace) > 0

    def test_expected_contact_count(self):
        generator = HomogeneousPoissonGenerator(num_nodes=20, contact_rate=0.01,
                                                duration=2000.0, contact_duration=0.0)
        trace = generator.generate(seed=3)
        expected = 20 * 0.01 * 2000.0
        assert expected * 0.7 < len(trace) < expected * 1.3

    def test_reproducible_with_seed(self):
        generator = HomogeneousPoissonGenerator(num_nodes=8, contact_rate=0.02,
                                                duration=500.0)
        assert generator.generate(seed=5) == generator.generate(seed=5)

    def test_different_seeds_differ(self):
        generator = HomogeneousPoissonGenerator(num_nodes=8, contact_rate=0.02,
                                                duration=500.0)
        assert generator.generate(seed=5) != generator.generate(seed=6)

    def test_rates_are_roughly_homogeneous(self):
        generator = HomogeneousPoissonGenerator(num_nodes=20, contact_rate=0.05,
                                                duration=5000.0, contact_duration=0.0)
        trace = generator.generate(seed=11)
        counts = np.array(list(trace.contact_counts().values()), dtype=float)
        # Every node participates, and the spread is modest compared with the
        # heterogeneous generator (coefficient of variation well below 0.5).
        assert counts.min() > 0
        assert counts.std() / counts.mean() < 0.5

    def test_zero_duration_contacts(self):
        generator = HomogeneousPoissonGenerator(num_nodes=5, contact_rate=0.02,
                                                duration=500.0, contact_duration=0.0)
        trace = generator.generate(seed=2)
        assert all(c.duration == 0.0 for c in trace)

    def test_profile_thinning_reduces_contacts(self):
        base = HomogeneousPoissonGenerator(num_nodes=10, contact_rate=0.05,
                                           duration=1000.0)
        thinned = HomogeneousPoissonGenerator(num_nodes=10, contact_rate=0.05,
                                              duration=1000.0,
                                              profile=ConstantProfile(0.2))
        assert len(thinned.generate(seed=9)) < len(base.generate(seed=9))

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            HomogeneousPoissonGenerator(num_nodes=1, contact_rate=0.1, duration=10.0)
        with pytest.raises(ValueError):
            HomogeneousPoissonGenerator(num_nodes=5, contact_rate=-1.0, duration=10.0)
        with pytest.raises(ValueError):
            HomogeneousPoissonGenerator(num_nodes=5, contact_rate=0.1, duration=0.0)
        with pytest.raises(ValueError):
            HomogeneousPoissonGenerator(num_nodes=5, contact_rate=0.1, duration=10.0,
                                        contact_duration=-5.0)


class TestConferenceTraceGenerator:
    def test_basic_generation(self):
        generator = ConferenceTraceGenerator(num_nodes=30, num_stationary=5,
                                             duration=1800.0,
                                             mean_contacts_per_node=20.0)
        trace = generator.generate(seed=1)
        assert trace.num_nodes == 30
        assert trace.duration == 1800.0
        assert len(trace) > 0

    def test_mean_contacts_close_to_target(self):
        target = 40.0
        generator = ConferenceTraceGenerator(num_nodes=40, num_stationary=8,
                                             duration=3600.0,
                                             mean_contacts_per_node=target)
        trace = generator.generate(seed=2)
        stats = describe(trace)
        assert target * 0.7 < stats.mean_contacts_per_node < target * 1.3

    def test_reproducible_with_seed(self):
        generator = ConferenceTraceGenerator(num_nodes=15, num_stationary=3,
                                             duration=600.0,
                                             mean_contacts_per_node=10.0)
        assert generator.generate(seed=4) == generator.generate(seed=4)

    def test_heterogeneous_rates(self):
        generator = ConferenceTraceGenerator(num_nodes=40, num_stationary=0,
                                             duration=3600.0,
                                             mean_contacts_per_node=50.0)
        trace = generator.generate(seed=3)
        counts = np.array(sorted(trace.contact_counts().values()), dtype=float)
        # Strong heterogeneity: the busiest node sees several times more
        # contacts than the quietest.
        assert counts[-1] > 3 * max(counts[0], 1.0)

    def test_contact_count_distribution_roughly_uniform(self):
        generator = ConferenceTraceGenerator(num_nodes=60, num_stationary=0,
                                             duration=3600.0,
                                             mean_contacts_per_node=60.0)
        trace = generator.generate(seed=8)
        # The paper's Figure 7 claim: per-node contact counts look uniform on
        # (0, max).  KS distance against uniform should be modest.
        assert rate_uniformity_statistic(trace) < 0.35

    def test_explicit_weights_override(self):
        generator = ConferenceTraceGenerator(num_nodes=4, num_stationary=0,
                                             duration=1000.0,
                                             mean_contacts_per_node=20.0,
                                             weights=[1.0, 1.0, 0.05, 0.05])
        trace = generator.generate(seed=6)
        counts = trace.contact_counts()
        assert counts[0] + counts[1] > counts[2] + counts[3]

    def test_two_class_constructor(self):
        generator = ConferenceTraceGenerator.two_class(
            num_high=5, num_low=10, high_weight=1.0, low_weight=0.1,
            duration=1800.0, mean_contacts_per_node=20.0,
        )
        assert generator.num_nodes == 15
        trace = generator.generate(seed=5)
        rates = trace.contact_rates()
        high = np.mean([rates[n] for n in range(5)])
        low = np.mean([rates[n] for n in range(5, 15)])
        assert high > 2 * low

    def test_tapered_profile_reduces_late_activity(self):
        duration = 3600.0
        generator = ConferenceTraceGenerator(
            num_nodes=40, num_stationary=0, duration=duration,
            mean_contacts_per_node=60.0, mean_contact_duration=0.0,
            profile=TaperedProfile(window_end=duration, taper_start=duration / 2,
                                   final_level=0.1),
        )
        trace = generator.generate(seed=9)
        first_half = len(trace.contacts_starting_in(0.0, duration / 2))
        second_half = len(trace.contacts_starting_in(duration / 2, duration))
        assert second_half < first_half * 0.8

    def test_stationary_window_is_stable(self):
        generator = ConferenceTraceGenerator(num_nodes=50, num_stationary=10,
                                             duration=3600.0,
                                             mean_contacts_per_node=80.0)
        trace = generator.generate(seed=10)
        assert stationarity_score(trace, bin_seconds=60.0) < 0.6

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ConferenceTraceGenerator(num_nodes=1)
        with pytest.raises(ValueError):
            ConferenceTraceGenerator(num_nodes=10, num_stationary=11)
        with pytest.raises(ValueError):
            ConferenceTraceGenerator(num_nodes=10, duration=0.0)
        with pytest.raises(ValueError):
            ConferenceTraceGenerator(num_nodes=10, mean_contacts_per_node=0.0)
        with pytest.raises(ValueError):
            ConferenceTraceGenerator(num_nodes=10, min_weight=0.0)
        with pytest.raises(ValueError):
            ConferenceTraceGenerator(num_nodes=10, weights=[1.0] * 9)

    def test_rejects_non_positive_explicit_weights(self):
        generator = ConferenceTraceGenerator(num_nodes=3, num_stationary=0,
                                             weights=[1.0, 0.5, 0.0],
                                             duration=100.0,
                                             mean_contacts_per_node=5.0)
        with pytest.raises(ValueError):
            generator.generate(seed=1)

    def test_two_class_validation(self):
        with pytest.raises(ValueError):
            ConferenceTraceGenerator.two_class(num_high=0, num_low=1)


class TestRandomWaypoint:
    def test_positions_shape_and_bounds(self):
        model = RandomWaypointModel(num_nodes=6, width=50.0, height=40.0)
        positions = model.sample_positions(duration=100.0, step=10.0, seed=1)
        assert positions.shape == (11, 6, 2)
        assert positions[..., 0].min() >= 0.0 and positions[..., 0].max() <= 50.0
        assert positions[..., 1].min() >= 0.0 and positions[..., 1].max() <= 40.0

    def test_positions_change_over_time(self):
        model = RandomWaypointModel(num_nodes=6, max_pause=0.0)
        positions = model.sample_positions(duration=200.0, step=10.0, seed=2)
        assert not np.allclose(positions[0], positions[-1])

    def test_generate_trace_produces_contacts(self):
        model = RandomWaypointModel(num_nodes=15, width=40.0, height=40.0,
                                    radio_range=12.0, max_pause=10.0)
        trace = model.generate_trace(duration=600.0, step=10.0, seed=3)
        assert trace.num_nodes == 15
        assert len(trace) > 0
        assert trace.duration == 600.0

    def test_trace_reproducible(self):
        model = RandomWaypointModel(num_nodes=8, radio_range=15.0)
        assert (model.generate_trace(300.0, step=10.0, seed=4)
                == model.generate_trace(300.0, step=10.0, seed=4))

    def test_contacts_from_positions_interval_detection(self):
        # Two nodes approach, stay close during steps 1-2, then separate.
        positions = np.array([
            [[0.0, 0.0], [30.0, 0.0]],
            [[0.0, 0.0], [5.0, 0.0]],
            [[0.0, 0.0], [5.0, 0.0]],
            [[0.0, 0.0], [30.0, 0.0]],
        ])
        trace = contacts_from_positions(positions, step=10.0, radio_range=10.0)
        assert len(trace) == 1
        contact = trace[0]
        assert contact.start == pytest.approx(10.0)
        assert contact.end == pytest.approx(30.0)

    def test_contact_open_at_end_is_closed_at_duration(self):
        positions = np.array([
            [[0.0, 0.0], [3.0, 0.0]],
            [[0.0, 0.0], [3.0, 0.0]],
        ])
        trace = contacts_from_positions(positions, step=10.0, radio_range=10.0)
        assert len(trace) == 1
        assert trace[0].end == pytest.approx(10.0)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            RandomWaypointModel(num_nodes=1)
        with pytest.raises(ValueError):
            RandomWaypointModel(num_nodes=5, min_speed=0.0)
        with pytest.raises(ValueError):
            RandomWaypointModel(num_nodes=5, radio_range=0.0)
        model = RandomWaypointModel(num_nodes=5)
        with pytest.raises(ValueError):
            model.sample_positions(duration=0.0)
        with pytest.raises(ValueError):
            model.sample_positions(duration=10.0, step=0.0)
        with pytest.raises(ValueError):
            contacts_from_positions(np.zeros((3, 4)), step=1.0, radio_range=1.0)
