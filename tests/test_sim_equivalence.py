"""Engine equivalence: the DES engine vs the trace-driven simulator.

With every resource constraint disabled, :class:`repro.sim.DesSimulator`
must reproduce :class:`repro.forwarding.ForwardingSimulator` *exactly* on
identical workloads: the same delivery set, the same first-delivery times,
the same hop counts (which pin the zero-time cascade traversal order, i.e.
the tie order among simultaneous receptions) and the same total copy count
(which pins the entire transfer relation).  This suite enforces that on all
four paper dataset stand-ins, for all six paper algorithms, and across the
simulator options (hand-off semantics, continued flooding after delivery).
"""

from __future__ import annotations

import pytest

from repro.contacts import Contact, ContactTrace
from repro.datasets import PAPER_DATASET_KEYS, load_dataset
from repro.forwarding import (
    ForwardingSimulator,
    Message,
    PoissonMessageWorkload,
    default_algorithms,
)
from repro.forwarding.algorithms import algorithm_by_name, algorithm_names
from repro.sim import DesSimulator, ResourceConstraints, UNCONSTRAINED

_SCALE = 0.2
_RATE = 0.01


def _assert_results_equal(reference, candidate, context=""):
    assert candidate.algorithm == reference.algorithm, context
    assert candidate.trace_name == reference.trace_name, context
    assert len(candidate.outcomes) == len(reference.outcomes), context
    for position, (expected, actual) in enumerate(
            zip(reference.outcomes, candidate.outcomes)):
        where = f"{context} message {expected.message.id} (#{position})"
        assert actual.message == expected.message, where
        assert actual.delivered == expected.delivered, where
        assert actual.delivery_time == expected.delivery_time, where
        assert actual.hop_count == expected.hop_count, where
    assert candidate.copies_sent == reference.copies_sent, context


def _workload(trace, seed=11):
    return PoissonMessageWorkload(rate=_RATE).generate(trace, seed=seed)


@pytest.mark.parametrize("dataset_key", PAPER_DATASET_KEYS)
def test_unconstrained_des_equals_trace_simulator(dataset_key):
    """Delivery streams match on every paper stand-in, all six algorithms."""
    trace = load_dataset(dataset_key, scale=_SCALE, contact_scale=_SCALE)
    messages = _workload(trace)
    assert messages, "workload must not be empty for the test to mean anything"
    for algorithm_name in algorithm_names():
        reference = ForwardingSimulator(
            trace, algorithm_by_name(algorithm_name)).run(messages)
        candidate = DesSimulator(
            trace, algorithm_by_name(algorithm_name)).run(messages)
        _assert_results_equal(reference, candidate,
                              context=f"{dataset_key} {algorithm_name}")


def test_explicitly_unconstrained_constraints_object():
    """Passing UNCONSTRAINED (or an equivalent instance) changes nothing."""
    trace = load_dataset("infocom06-9-12", scale=_SCALE, contact_scale=_SCALE)
    messages = _workload(trace, seed=5)
    for constraints in (UNCONSTRAINED, ResourceConstraints()):
        assert constraints.is_unconstrained
        reference = ForwardingSimulator(
            trace, algorithm_by_name("Epidemic")).run(messages)
        candidate = DesSimulator(trace, algorithm_by_name("Epidemic"),
                                 constraints=constraints).run(messages)
        _assert_results_equal(reference, candidate, context="explicit")


def test_equivalence_with_handoff_semantics():
    trace = load_dataset("conext06-9-12", scale=_SCALE, contact_scale=_SCALE)
    messages = _workload(trace, seed=21)
    for algorithm_name in ("Epidemic", "Greedy", "Dynamic Programming"):
        reference = ForwardingSimulator(trace, algorithm_by_name(algorithm_name),
                                        copy_semantics="handoff").run(messages)
        candidate = DesSimulator(trace, algorithm_by_name(algorithm_name),
                                 copy_semantics="handoff").run(messages)
        _assert_results_equal(reference, candidate,
                              context=f"handoff {algorithm_name}")


def test_equivalence_without_stop_on_delivery():
    """Continued flooding after delivery must match too."""
    trace = load_dataset("infocom06-3-6", scale=_SCALE, contact_scale=_SCALE)
    messages = _workload(trace, seed=31)
    for algorithm_name in ("Epidemic", "FRESH"):
        reference = ForwardingSimulator(trace, algorithm_by_name(algorithm_name),
                                        stop_on_delivery=False).run(messages)
        candidate = DesSimulator(trace, algorithm_by_name(algorithm_name),
                                 stop_on_delivery=False).run(messages)
        _assert_results_equal(reference, candidate,
                              context=f"no-stop {algorithm_name}")


def test_equivalence_zero_duration_and_simultaneous_contacts():
    """Adversarial timing: zero-duration contacts, shared instants, a
    message created exactly when a contact ends."""
    contacts = [
        Contact(0.0, 0.0, 0, 1),    # zero-duration sighting at t=0
        Contact(0.0, 30.0, 1, 2),
        Contact(10.0, 10.0, 2, 3),  # zero-duration while 1-2 active
        Contact(10.0, 40.0, 0, 3),
        Contact(40.0, 50.0, 3, 4),  # starts as 0-3 ends
        Contact(50.0, 60.0, 0, 4),
    ]
    trace = ContactTrace(contacts, nodes=range(5), duration=80.0, name="adv")
    messages = [
        Message(id=0, source=0, destination=4, creation_time=0.0),
        Message(id=1, source=0, destination=2, creation_time=10.0),
        Message(id=2, source=1, destination=3, creation_time=30.0),  # at 1-2 end
        Message(id=3, source=2, destination=0, creation_time=40.0),
    ]
    for algorithm in default_algorithms():
        reference = ForwardingSimulator(trace, algorithm).run(messages)
        candidate = DesSimulator(trace, algorithm_by_name(algorithm.name)).run(messages)
        _assert_results_equal(reference, candidate,
                              context=f"adversarial {algorithm.name}")


def test_equivalence_overlapping_pair_contacts():
    """Overlapping contacts of the same pair (reference counting)."""
    contacts = [
        Contact(0.0, 40.0, 0, 1),
        Contact(10.0, 20.0, 0, 1),   # nested duplicate
        Contact(15.0, 60.0, 1, 2),
        Contact(30.0, 35.0, 2, 3),
    ]
    trace = ContactTrace(contacts, nodes=range(4), duration=80.0, name="overlap")
    messages = [Message(id=0, source=0, destination=3, creation_time=5.0),
                Message(id=1, source=3, destination=0, creation_time=25.0)]
    for algorithm in default_algorithms():
        reference = ForwardingSimulator(trace, algorithm).run(messages)
        candidate = DesSimulator(trace, algorithm_by_name(algorithm.name)).run(messages)
        _assert_results_equal(reference, candidate,
                              context=f"overlap {algorithm.name}")


def test_message_size_override_alone_keeps_equivalence():
    """message_size without buffers/bandwidth/ttl has no observable effect."""
    trace = load_dataset("conext06-3-6", scale=_SCALE, contact_scale=_SCALE)
    messages = _workload(trace, seed=41)
    constraints = ResourceConstraints(message_size=1e9)
    assert constraints.is_unconstrained
    reference = ForwardingSimulator(trace, algorithm_by_name("Epidemic")).run(messages)
    candidate = DesSimulator(trace, algorithm_by_name("Epidemic"),
                             constraints=constraints).run(messages)
    _assert_results_equal(reference, candidate, context="size-override")
