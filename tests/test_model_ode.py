"""Unit tests for the fluid-limit ODE (repro.model.ode)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.model import (
    InitialPathDistribution,
    initial_condition,
    mean_paths,
    solve_path_density_ode,
    variance,
)


class TestInitialCondition:
    def test_single_source_density(self):
        u0 = initial_condition(num_nodes=50, truncation=10)
        assert u0[0] == pytest.approx(1 - 1 / 50)
        assert u0[1] == pytest.approx(1 / 50)
        assert u0[2:].sum() == 0.0
        assert u0.sum() == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            initial_condition(0, 10)
        with pytest.raises(ValueError):
            initial_condition(10, 0)


class TestSolve:
    def test_mass_conserved(self):
        solution = solve_path_density_ode(contact_rate=0.01, horizon=300.0,
                                          num_nodes=50, truncation=100)
        assert np.all(np.abs(solution.mass() - 1.0) < 1e-3)

    def test_densities_non_negative(self):
        solution = solve_path_density_ode(contact_rate=0.01, horizon=300.0,
                                          num_nodes=50, truncation=100)
        assert np.all(solution.densities >= 0.0)

    def test_mean_matches_closed_form(self):
        """The ODE mean must reproduce E[S(t)] = E[S(0)] e^{λt} (Equation 4)."""
        lam, num_nodes = 0.01, 50
        solution = solve_path_density_ode(contact_rate=lam, horizon=400.0,
                                          num_nodes=num_nodes, truncation=400)
        initial = InitialPathDistribution.single_source(num_nodes)
        predicted = mean_paths(solution.times, lam, initial)
        measured = solution.mean_paths()
        assert np.allclose(measured, predicted, rtol=2e-2)

    def test_variance_matches_closed_form(self):
        lam, num_nodes = 0.008, 50
        solution = solve_path_density_ode(contact_rate=lam, horizon=400.0,
                                          num_nodes=num_nodes, truncation=400)
        initial = InitialPathDistribution.single_source(num_nodes)
        predicted = variance(solution.times, lam, initial)
        measured = solution.variance()
        # The truncated system slightly under-counts the tail; allow a
        # modest relative error.
        assert np.allclose(measured, predicted, rtol=8e-2)

    def test_zero_rate_is_static(self):
        solution = solve_path_density_ode(contact_rate=0.0, horizon=100.0,
                                          num_nodes=20, truncation=10)
        assert np.allclose(solution.densities[0], solution.densities[-1])

    def test_fraction_with_at_least_increases(self):
        solution = solve_path_density_ode(contact_rate=0.02, horizon=300.0,
                                          num_nodes=30, truncation=200)
        curve = solution.fraction_with_at_least(1)
        assert curve[0] == pytest.approx(1 / 30, abs=1e-6)
        assert np.all(np.diff(curve) >= -1e-9)
        assert curve[-1] > curve[0]

    def test_growth_rate_scales_with_lambda(self):
        """Doubling λ should (approximately) double the exponential growth
        rate of the mean path count — the core of the paper's model result."""
        horizon = 250.0
        slow = solve_path_density_ode(contact_rate=0.005, horizon=horizon,
                                      num_nodes=40, truncation=300)
        fast = solve_path_density_ode(contact_rate=0.01, horizon=horizon,
                                      num_nodes=40, truncation=300)
        slow_rate = np.polyfit(slow.times, np.log(slow.mean_paths()), 1)[0]
        fast_rate = np.polyfit(fast.times, np.log(fast.mean_paths()), 1)[0]
        assert fast_rate / slow_rate == pytest.approx(2.0, rel=0.1)

    def test_custom_initial_condition(self):
        truncation = 50
        u0 = np.zeros(truncation + 1)
        u0[2] = 1.0  # every node starts with exactly two paths
        solution = solve_path_density_ode(contact_rate=0.01, horizon=50.0,
                                          truncation=truncation, initial=u0)
        assert solution.mean_paths()[0] == pytest.approx(2.0)

    def test_truncation_property(self):
        solution = solve_path_density_ode(contact_rate=0.01, horizon=10.0,
                                          num_nodes=10, truncation=33)
        assert solution.truncation == 33

    def test_validation(self):
        with pytest.raises(ValueError):
            solve_path_density_ode(contact_rate=-0.1, horizon=10.0)
        with pytest.raises(ValueError):
            solve_path_density_ode(contact_rate=0.1, horizon=0.0)
        with pytest.raises(ValueError):
            solve_path_density_ode(contact_rate=0.1, horizon=10.0,
                                   truncation=5, initial=np.array([1.0, 0.0]))
        with pytest.raises(ValueError):
            solve_path_density_ode(contact_rate=0.1, horizon=10.0,
                                   truncation=1, initial=np.array([1.5, -0.5]))
