"""Unit tests for the space-time graph (repro.core.space_time_graph)."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.contacts import Contact, ContactTrace
from repro.core import DEFAULT_DELTA, SpaceTimeGraph


@pytest.fixture
def graph(tiny_trace) -> SpaceTimeGraph:
    return SpaceTimeGraph(tiny_trace, delta=10.0)


class TestConstruction:
    def test_default_delta_matches_paper(self):
        assert DEFAULT_DELTA == 10.0

    def test_num_steps_covers_duration(self, tiny_trace):
        graph = SpaceTimeGraph(tiny_trace, delta=10.0)
        assert graph.num_steps == 20  # 200 s / 10 s

    def test_partial_final_step(self):
        trace = ContactTrace([Contact(0.0, 5.0, 0, 1)], duration=25.0)
        graph = SpaceTimeGraph(trace, delta=10.0)
        assert graph.num_steps == 3

    def test_rejects_non_positive_delta(self, tiny_trace):
        with pytest.raises(ValueError):
            SpaceTimeGraph(tiny_trace, delta=0.0)

    def test_nodes_match_trace(self, graph, tiny_trace):
        assert graph.nodes == tiny_trace.nodes


class TestStepMapping:
    def test_step_of_time(self, graph):
        assert graph.step_of_time(0.0) == 0
        assert graph.step_of_time(9.99) == 0
        assert graph.step_of_time(10.0) == 1
        assert graph.step_of_time(199.0) == 19

    def test_step_of_time_clamps_to_last_step(self, graph):
        assert graph.step_of_time(1e9) == graph.num_steps - 1

    def test_step_of_time_rejects_negative(self, graph):
        with pytest.raises(ValueError):
            graph.step_of_time(-1.0)

    def test_time_of_step_is_step_end(self, graph):
        assert graph.time_of_step(0) == 10.0
        assert graph.time_of_step(5) == 60.0

    def test_time_of_step_bounds(self, graph):
        with pytest.raises(IndexError):
            graph.time_of_step(-1)
        with pytest.raises(IndexError):
            graph.time_of_step(graph.num_steps)


class TestAdjacency:
    def test_contact_spans_all_overlapping_steps(self, graph):
        # Contact 0-1 spans [0, 20): steps 0 and 1.
        assert graph.in_contact(0, 1, 0)
        assert graph.in_contact(0, 1, 1)
        assert not graph.in_contact(0, 1, 2)

    def test_contact_end_boundary_excluded(self):
        trace = ContactTrace([Contact(0.0, 10.0, 0, 1)], duration=30.0)
        graph = SpaceTimeGraph(trace, delta=10.0)
        assert graph.in_contact(0, 1, 0)
        assert not graph.in_contact(0, 1, 1)

    def test_zero_duration_contact_in_single_step(self):
        trace = ContactTrace([Contact(15.0, 15.0, 0, 1)], duration=30.0)
        graph = SpaceTimeGraph(trace, delta=10.0)
        assert graph.in_contact(0, 1, 1)
        assert not graph.in_contact(0, 1, 0)

    def test_neighbors_symmetric(self, graph):
        assert 1 in graph.neighbors(0, 0)
        assert 0 in graph.neighbors(1, 0)

    def test_neighbors_empty_when_idle(self, graph):
        assert graph.neighbors(4, 0) == frozenset()

    def test_degree(self, dense_burst_trace):
        graph = SpaceTimeGraph(dense_burst_trace, delta=10.0)
        step = graph.step_of_time(105.0)
        assert graph.degree(0, step) == 3

    def test_active_nodes(self, graph):
        assert graph.active_nodes(0) == frozenset({0, 1})
        assert graph.active_nodes(3) == frozenset({1, 2})

    def test_adjacency_bounds_check(self, graph):
        with pytest.raises(IndexError):
            graph.adjacency(999)


class TestReachability:
    def test_reachable_within_step_component(self, dense_burst_trace):
        graph = SpaceTimeGraph(dense_burst_trace, delta=10.0)
        step = graph.step_of_time(105.0)
        assert graph.reachable_within_step(0, step) == frozenset({1, 2, 3})

    def test_reachable_within_step_isolated_node(self, graph):
        assert graph.reachable_within_step(4, 0) == frozenset()

    def test_reachable_chains_through_intermediate(self):
        # 0-1 and 1-2 in the same step: 2 is reachable from 0 via 1.
        trace = ContactTrace([Contact(0.0, 10.0, 0, 1), Contact(0.0, 10.0, 1, 2)],
                             duration=20.0)
        graph = SpaceTimeGraph(trace, delta=10.0)
        assert graph.reachable_within_step(0, 0) == frozenset({1, 2})

    def test_components(self, dense_burst_trace):
        graph = SpaceTimeGraph(dense_burst_trace, delta=10.0)
        step = graph.step_of_time(105.0)
        components = graph.components(step)
        assert len(components) == 1
        assert components[0] == frozenset({0, 1, 2, 3})

    def test_components_empty_step(self, graph):
        assert graph.components(2) == []

    def test_first_contact_step(self, graph):
        assert graph.first_contact_step(0, 1) == 0
        assert graph.first_contact_step(2, 3) == 6
        assert graph.first_contact_step(0, 1, start_step=3) is None

    def test_contact_steps(self, graph):
        assert graph.contact_steps(4) == [9, 10, 12, 13]

    def test_total_contact_edges(self, graph):
        # Each 20 s contact spans two 10 s steps: 5 contacts -> 10 step-edges.
        assert graph.total_contact_edges() == 10


class TestNetworkxExport:
    def test_vertex_count(self, graph, tiny_trace):
        exported = graph.to_networkx(0, 3)
        assert exported.number_of_nodes() == tiny_trace.num_nodes * 3

    def test_contact_edges_have_zero_weight(self, graph):
        exported = graph.to_networkx(0, 2)
        weight = exported[(0, 10.0)][(1, 10.0)]["weight"]
        assert weight == 0

    def test_waiting_edges_have_unit_weight(self, graph):
        exported = graph.to_networkx(0, 2)
        weight = exported[(0, 10.0)][(0, 20.0)]["weight"]
        assert weight == 1

    def test_contact_edges_bidirectional(self, graph):
        exported = graph.to_networkx(0, 1)
        assert exported.has_edge((0, 10.0), (1, 10.0))
        assert exported.has_edge((1, 10.0), (0, 10.0))

    def test_paper_example_structure(self):
        """The Figure 2 example: 1-2 in contact at step 0, all pairs at step 1."""
        trace = ContactTrace(
            [Contact(0.0, 10.0, 1, 2),
             Contact(10.0, 20.0, 1, 2),
             Contact(10.0, 20.0, 2, 3),
             Contact(10.0, 20.0, 1, 3)],
            nodes=[1, 2, 3], duration=20.0,
        )
        graph = SpaceTimeGraph(trace, delta=10.0).to_networkx()
        zero_weight = [(u, v) for u, v, w in graph.edges(data="weight") if w == 0]
        # step 0: 1<->2 (2 directed edges); step 1: three pairs (6 directed edges)
        assert len(zero_weight) == 8
        unit_weight = [(u, v) for u, v, w in graph.edges(data="weight") if w == 1]
        assert len(unit_weight) == 3  # one waiting edge per node

    def test_invalid_step_range(self, graph):
        with pytest.raises(ValueError):
            graph.to_networkx(5, 5)

    def test_shortest_path_in_exported_graph_matches_hops(self):
        """Dijkstra over the exported graph counts waiting steps as weight."""
        trace = ContactTrace(
            [Contact(0.0, 10.0, 0, 1), Contact(20.0, 30.0, 1, 2)],
            nodes=[0, 1, 2], duration=30.0,
        )
        stg = SpaceTimeGraph(trace, delta=10.0)
        exported = stg.to_networkx()
        length = nx.dijkstra_path_length(exported, (0, 10.0), (2, 30.0), weight="weight")
        # Two waiting steps (10->20->30) for node 1 before handing to 2... the
        # shortest route is contact to 1 at T=10 (0), wait to T=30 (2), contact
        # to 2 at T=30 (0) => total weight 2.
        assert length == 2
