"""The fault-tolerant experiment executor and store recovery.

Chaos-style coverage of the runtime fault layer: poison jobs (always
raise), hung jobs (cut by the per-job wall-clock timeout), and jobs that
``os._exit`` their worker mid-grid.  A grid containing any of these must
still complete every healthy job, persist failure RunRecords for the
quarantined ones, report them through ``experiment_status``, and re-run
exactly the failures under ``retry_failed``.  Separately,
:func:`repro.exp.pool.process_map` must drain (and persist) completed
results before surfacing a job error, and :class:`repro.exp.ResultStore`
must recover from truncated tails and corrupt lines — both pinned with
hypothesis properties.
"""

from __future__ import annotations

import json
import os
import time
import warnings
from dataclasses import dataclass

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.exp import (
    ExperimentSpec,
    FaultPolicy,
    ResultStore,
    experiment_status,
    process_map,
    run_experiment,
)
from repro.exp.records import decode_failure, is_failure_record
from repro.forwarding import PoissonMessageWorkload
from repro.scenario.traces import TwoClassTraceSpec
from repro.sim.scenarios import Scenario

_TRACE = TwoClassTraceSpec(num_high=2, num_low=4, duration=600.0,
                           mean_contacts_per_node=10.0)

#: Fast-retry policy used throughout so tests never sleep for real.
_POLICY = FaultPolicy(timeout_s=2.0, max_attempts=2, crash_retries=2,
                      backoff_base_s=0.01, backoff_cap_s=0.02,
                      backoff_jitter=0.0)


# ----------------------------------------------------------------------
# misbehaving workloads (module-level so worker processes can unpickle them)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PoisonWorkload:
    """Raises on every generate call — a deterministic poison job."""

    label: str = "poison"

    def generate(self, trace, seed):
        raise RuntimeError(f"workload {self.label} exploded")


@dataclass(frozen=True)
class HangingWorkload:
    """Sleeps far past any sane per-job timeout."""

    naptime: float = 120.0

    def generate(self, trace, seed):
        time.sleep(self.naptime)
        return []


@dataclass(frozen=True)
class CrashOnceWorkload:
    """``os._exit``s its worker on the first attempt (before *marker*
    exists), then behaves — a transient infrastructure fault."""

    marker: str

    def generate(self, trace, seed):
        if not os.path.exists(self.marker):
            with open(self.marker, "w"):
                pass
            os._exit(41)
        return PoissonMessageWorkload(rate=0.02).generate(trace, seed=seed)


@dataclass(frozen=True)
class CrashAlwaysWorkload:
    """``os._exit``s its worker every single time — a true poison pill."""

    label: str = "crash-always"

    def generate(self, trace, seed):
        os._exit(43)


def _scenario(name, workload):
    return Scenario(name=name, description=f"fault fixture: {name}",
                    trace=_TRACE, workload=workload,
                    algorithms=("Epidemic",))


def _good(name="healthy", rate=0.02):
    # distinct rates where tests use several healthy scenarios: job identity
    # is content-addressed (names excluded), so same-content scenarios
    # would dedup into a single planned job
    return _scenario(name, PoissonMessageWorkload(rate=rate))


# ----------------------------------------------------------------------
# poison + hung jobs: the grid completes degraded
# ----------------------------------------------------------------------
class TestQuarantine:
    def test_poison_and_hung_jobs_do_not_abort_the_grid(self, tmp_path):
        spec = ExperimentSpec(
            name="degraded-grid",
            scenarios=(_good(), _scenario("poison", PoisonWorkload()),
                       _scenario("hung", HangingWorkload())),
            seeds=(7,))
        store = str(tmp_path / "results")
        result = run_experiment(spec, store=store, policy=_POLICY)

        assert result.num_executed == 1
        assert result.num_failed == 2
        kinds = {row["scenario"]: row["error_kind"]
                 for row in result.failure_rows()}
        assert kinds == {"poison": "RuntimeError", "hung": "JobTimeout"}
        attempts = {row["scenario"]: row["attempts"]
                    for row in result.failure_rows()}
        assert attempts["poison"] == _POLICY.max_attempts
        # healthy rows still tabulate; failed cells are simply absent
        assert {row["scenario"] for row in result.table_rows()} == {"healthy"}

    def test_failure_records_persist_and_status_reports_them(self, tmp_path):
        spec = ExperimentSpec(
            name="status-failures",
            scenarios=(_good(), _scenario("poison", PoisonWorkload())),
            seeds=(7,))
        store = str(tmp_path / "results")
        result = run_experiment(spec, store=store, policy=_POLICY)
        assert result.num_failed == 1

        resolved = ResultStore(store)
        failed_hash = result.outcome.failed[0]
        record = resolved.get(failed_hash)
        assert record is not None and is_failure_record(record)
        failure = decode_failure(record)
        assert failure.error_kind == "RuntimeError"
        assert "exploded" in failure.error
        assert failure.attempts == _POLICY.max_attempts
        assert failure.detail and "RuntimeError" in failure.detail

        status = experiment_status(spec, store=store)
        assert (status["done"], status["failed"], status["pending"]) == (1, 1, 0)
        assert status["scenarios"]["poison"]["failed"] == 1
        (row,) = status["failures"]
        assert row["scenario"] == "poison"
        assert row["error_kind"] == "RuntimeError"

    def test_resume_keeps_quarantine_unless_retry_failed(self, tmp_path):
        spec = ExperimentSpec(
            name="retry-failed",
            scenarios=(_good(), _scenario("poison", PoisonWorkload())),
            seeds=(7,))
        store = str(tmp_path / "results")
        first = run_experiment(spec, store=store, policy=_POLICY)
        assert (first.num_executed, first.num_failed) == (1, 1)

        resumed = run_experiment(spec, store=store, policy=_POLICY)
        assert resumed.num_executed == 0          # nothing re-simulated
        assert resumed.num_reused == 1
        assert resumed.num_failed == 1            # quarantine carried over
        carried = next(iter(resumed.outcome.failures.values()))
        assert carried.error_kind == "RuntimeError"

        retried = run_experiment(spec, store=store, policy=_POLICY,
                                 retry_failed=True)
        assert retried.num_executed == 0          # it failed again...
        assert retried.num_failed == 1            # ...freshly, not carried
        assert retried.num_reused == 1

    def test_legacy_strict_path_rejects_then_reruns_failure_records(
            self, tmp_path):
        """Without a policy a stored failure record is not an answer: the
        job re-runs (and, for a poison job, the error propagates)."""
        spec = ExperimentSpec(
            name="strict-rerun",
            scenarios=(_scenario("poison", PoisonWorkload()),), seeds=(7,))
        store = str(tmp_path / "results")
        run_experiment(spec, store=store, policy=_POLICY)
        with pytest.raises(RuntimeError, match="exploded"):
            run_experiment(spec, store=store)


# ----------------------------------------------------------------------
# worker crashes
# ----------------------------------------------------------------------
class TestWorkerCrash:
    def test_transient_crash_recovers_and_resume_executes_nothing(
            self, tmp_path):
        """A worker os._exit-ing mid-grid loses no completed job: the
        crashed job is retried on a fresh pool, everything persists, and a
        second invocation reuses the entire grid."""
        marker = str(tmp_path / "crashed-once")
        spec = ExperimentSpec(
            name="chaos-resume",
            scenarios=(_good("healthy-a", rate=0.02),
                       _good("healthy-b", rate=0.03),
                       _scenario("crash-once", CrashOnceWorkload(marker)),
                       _good("healthy-c", rate=0.04)),
            seeds=(7,))
        store = str(tmp_path / "results")
        result = run_experiment(spec, store=store, policy=_POLICY,
                                parallel=True, n_workers=2)
        assert os.path.exists(marker), "the crashing attempt must have run"
        assert result.num_failed == 0
        assert result.num_executed == 4

        resumed = run_experiment(spec, store=store, policy=_POLICY,
                                 parallel=True, n_workers=2)
        assert resumed.num_executed == 0
        assert resumed.num_reused == 4

    def test_persistent_crasher_is_quarantined_not_fatal(self, tmp_path):
        spec = ExperimentSpec(
            name="poison-pill",
            scenarios=(_good("healthy-a", rate=0.02),
                       _scenario("pill", CrashAlwaysWorkload()),
                       _good("healthy-b", rate=0.03)),
            seeds=(7,))
        store = str(tmp_path / "results")
        result = run_experiment(spec, store=store, policy=_POLICY,
                                parallel=True, n_workers=2)
        assert result.num_executed == 2
        assert result.num_failed == 1
        (row,) = result.failure_rows()
        assert row["scenario"] == "pill"
        assert row["error_kind"] == "WorkerCrash"
        record = ResultStore(store).get(row["job_hash"])
        assert record is not None and is_failure_record(record)


# ----------------------------------------------------------------------
# process_map drains completed results before surfacing a job error
# ----------------------------------------------------------------------
def _double_or_boom(value):
    if value == 3:
        raise ValueError("boom on 3")
    return value * 2


class TestProcessMapDrain:
    @pytest.mark.parametrize("n_workers", [1, 2])
    def test_completed_results_persist_past_a_job_error(self, n_workers):
        jobs = list(range(6))
        persisted = {}
        with pytest.raises(ValueError, match="boom on 3"):
            process_map(_double_or_boom, jobs, n_workers=n_workers,
                        on_result=lambda i, r: persisted.setdefault(i, r))
        if n_workers == 1:
            # the serial path stops at the error: everything before it is in
            assert persisted == {0: 0, 1: 2, 2: 4}
        else:
            # the pool path drains the whole batch before raising
            assert persisted == {0: 0, 1: 2, 2: 4, 4: 8, 5: 10}


# ----------------------------------------------------------------------
# store recovery properties
# ----------------------------------------------------------------------
def _fill(store_dir, count):
    store = ResultStore(store_dir)
    for i in range(count):
        store.put({"job_hash": f"hash-{i}", "value": i})
    return store.path


class TestStoreRecovery:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(count=st.integers(min_value=2, max_value=6),
           cut=st.integers(min_value=1, max_value=12))
    def test_truncated_tail_loses_at_most_the_last_record(
            self, tmp_path_factory, count, cut):
        root = tmp_path_factory.mktemp("store")
        path = _fill(root, count)
        raw = path.read_bytes()
        last_line = raw.rstrip(b"\n").rsplit(b"\n", 1)[-1] + b"\n"
        cut = min(cut, len(last_line) - 1)
        path.write_bytes(raw[:len(raw) - cut])

        fresh = ResultStore(root)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            fresh.load()
        hashes = set(fresh.hashes())
        assert {f"hash-{i}" for i in range(count - 1)} <= hashes
        assert len(hashes) >= count - 1

        # appending after recovery yields a fully valid file again
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            fresh.put({"job_hash": "hash-new", "value": -1})
        reread = ResultStore(root)
        reread.load()
        assert "hash-new" in reread.hashes()
        for line in path.read_bytes().strip().split(b"\n"):
            json.loads(line)  # every line parses

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(count=st.integers(min_value=2, max_value=6),
           victim=st.integers(min_value=0, max_value=5),
           garbage=st.sampled_from([b"{not json", b"\x00\xffbinary",
                                    b'{"job_hash": 1']))
    def test_corrupt_line_loses_only_that_record(self, tmp_path_factory,
                                                 count, victim, garbage):
        victim = victim % count
        root = tmp_path_factory.mktemp("store")
        path = _fill(root, count)
        lines = path.read_bytes().strip().split(b"\n")
        lines[victim] = garbage
        path.write_bytes(b"\n".join(lines) + b"\n")

        fresh = ResultStore(root)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            fresh.load()
        expected = {f"hash-{i}" for i in range(count) if i != victim}
        assert set(fresh.hashes()) == expected
