"""Unit tests for the closed-form homogeneous model (repro.model.generating_function)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.model import (
    InitialPathDistribution,
    blowup_time,
    expected_first_path_time,
    explosion_time_for_mean,
    mean_paths,
    phi,
    second_moment,
    variance,
)


@pytest.fixture
def single_source() -> InitialPathDistribution:
    return InitialPathDistribution.single_source(num_nodes=100)


class TestInitialDistribution:
    def test_single_source_probabilities(self):
        dist = InitialPathDistribution.single_source(4)
        assert dist.probabilities.tolist() == pytest.approx([0.75, 0.25])
        assert dist.mean() == pytest.approx(0.25)

    def test_phi0_at_one_is_one(self, single_source):
        assert single_source.phi0(1.0) == pytest.approx(1.0)

    def test_phi0_general(self):
        dist = InitialPathDistribution(np.array([0.5, 0.3, 0.2]))
        assert dist.phi0(2.0) == pytest.approx(0.5 + 0.3 * 2 + 0.2 * 4)

    def test_moments(self):
        dist = InitialPathDistribution(np.array([0.5, 0.3, 0.2]))
        assert dist.mean() == pytest.approx(0.7)
        assert dist.second_moment() == pytest.approx(0.3 + 0.8)
        assert dist.variance() == pytest.approx(1.1 - 0.49)

    def test_rejects_unnormalised(self):
        with pytest.raises(ValueError):
            InitialPathDistribution(np.array([0.5, 0.2]))

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            InitialPathDistribution(np.array([1.2, -0.2]))

    def test_rejects_bad_num_nodes(self):
        with pytest.raises(ValueError):
            InitialPathDistribution.single_source(0)


class TestPhi:
    def test_phi_at_x_one_is_constant_one(self, single_source):
        times = np.linspace(0, 1000, 5)
        values = phi(1.0, times, 0.01, single_source)
        assert np.allclose(values, 1.0)

    def test_phi_decreases_for_x_below_one(self, single_source):
        # phi_x(t) = sum x^k u_k(t); as mass moves to larger k it shrinks.
        values = phi(0.5, np.array([0.0, 100.0, 500.0]), 0.01, single_source)
        assert values[0] > values[1] > values[2]

    def test_phi_solves_the_ode(self, single_source):
        """dφ/dt = λ(φ² − φ), checked by finite differences."""
        lam = 0.02
        t = 120.0
        h = 1e-4
        x = 0.6
        f_plus = phi(x, t + h, lam, single_source)
        f_minus = phi(x, t - h, lam, single_source)
        derivative = (f_plus - f_minus) / (2 * h)
        value = phi(x, t, lam, single_source)
        assert derivative == pytest.approx(lam * (value ** 2 - value), rel=1e-4)

    def test_phi_blows_up_for_x_above_one(self, single_source):
        lam = 0.01
        t_blow = blowup_time(2.0, lam, single_source)
        before = phi(2.0, t_blow * 0.99, lam, single_source)
        after = phi(2.0, t_blow * 1.01, lam, single_source)
        assert np.isfinite(before)
        assert not np.isfinite(after)

    def test_phi_scalar_input_returns_scalar(self, single_source):
        value = phi(0.5, 10.0, 0.01, single_source)
        assert isinstance(value, float)

    def test_rejects_negative_rate(self, single_source):
        with pytest.raises(ValueError):
            phi(0.5, 1.0, -0.1, single_source)


class TestMoments:
    def test_mean_growth_is_exponential(self, single_source):
        lam = 0.005
        t = np.array([0.0, 200.0, 400.0])
        means = mean_paths(t, lam, single_source)
        assert means[0] == pytest.approx(0.01)
        assert means[1] / means[0] == pytest.approx(math.exp(lam * 200.0))
        assert means[2] / means[1] == pytest.approx(math.exp(lam * 200.0))

    def test_second_moment_formula_at_zero(self, single_source):
        assert second_moment(0.0, 0.01, single_source) == pytest.approx(
            single_source.second_moment())

    def test_variance_zero_at_time_zero_for_deterministic_start(self):
        # A start where every node has exactly one path: V[S(0)] = 0 but the
        # variance still grows as E[S(0)](e^{2λt} − e^{λt}).
        dist = InitialPathDistribution(np.array([0.0, 1.0]))
        lam = 0.01
        assert variance(0.0, lam, dist) == pytest.approx(0.0)
        t = 100.0
        expected = math.exp(2 * lam * t) - math.exp(lam * t)
        assert variance(t, lam, dist) == pytest.approx(expected)

    def test_variance_consistent_with_moments(self, single_source):
        lam, t = 0.02, 150.0
        direct = variance(t, lam, single_source)
        from_moments = second_moment(t, lam, single_source) - mean_paths(t, lam, single_source) ** 2
        assert direct == pytest.approx(from_moments, rel=1e-9)

    def test_zero_rate_freezes_moments(self, single_source):
        assert mean_paths(500.0, 0.0, single_source) == pytest.approx(single_source.mean())
        assert variance(500.0, 0.0, single_source) == pytest.approx(single_source.variance())


class TestCharacteristicTimes:
    def test_blowup_time_formula(self, single_source):
        lam = 0.01
        x = 2.0
        phi0 = single_source.phi0(x)
        expected = math.log(phi0 / (phi0 - 1.0)) / lam
        assert blowup_time(x, lam, single_source) == pytest.approx(expected)

    def test_blowup_requires_x_above_one(self, single_source):
        with pytest.raises(ValueError):
            blowup_time(1.0, 0.01, single_source)

    def test_blowup_infinite_for_zero_rate(self, single_source):
        assert blowup_time(2.0, 0.0, single_source) == math.inf

    def test_expected_first_path_time(self):
        assert expected_first_path_time(100, 0.01) == pytest.approx(math.log(100) / 0.01)

    def test_expected_first_path_time_infinite_for_zero_rate(self):
        assert expected_first_path_time(100, 0.0) == math.inf

    def test_expected_first_path_decreases_with_rate(self):
        assert expected_first_path_time(100, 0.02) < expected_first_path_time(100, 0.01)

    def test_explosion_time_for_mean(self):
        lam, n, target = 0.01, 100, 2000
        t = explosion_time_for_mean(target, n, lam)
        # At that time the predicted mean path count equals the target.
        assert (1.0 / n) * math.exp(lam * t) == pytest.approx(target)

    def test_explosion_time_after_first_path_time(self):
        lam, n = 0.01, 100
        assert explosion_time_for_mean(2000, n, lam) > expected_first_path_time(n, lam)

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_first_path_time(0, 0.01)
        with pytest.raises(ValueError):
            explosion_time_for_mean(0.0, 10, 0.01)
        with pytest.raises(ValueError):
            explosion_time_for_mean(10.0, 0, 0.01)
