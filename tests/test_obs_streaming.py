"""Streaming metric accumulators: exactness, merge laws, error bounds.

The contract under test (see :mod:`repro.obs.streaming`): while a sketch
is exact (``<= exact_capacity`` samples) every streaming summary is
byte-identical to the batch computation, because both defer to the same
``np.mean`` / ``np.median`` / ``np.percentile`` calls; past that, quantile
queries stay within a bounded rank error.  Merging is associative and
commutative — exactly for counts, to floating tolerance for moments.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import PAPER_DATASET_KEYS, load_dataset
from repro.forwarding import (
    ForwardingSimulator,
    PoissonMessageWorkload,
)
from repro.forwarding.algorithms import algorithm_by_name
from repro.forwarding.metrics import summarize
from repro.obs import QuantileSketch, StreamingMoments, StreamingSummary

_SCALE = 0.2
_RATE = 0.01

# finite, moderate-magnitude floats: the merge laws are floating-point
# statements, so keep values away from cancellation-catastrophe ranges
values = st.floats(min_value=-1e6, max_value=1e6,
                   allow_nan=False, allow_infinity=False, width=64)
value_lists = st.lists(values, max_size=200)


def _moments_of(samples):
    moments = StreamingMoments()
    for sample in samples:
        moments.add(sample)
    return moments


def _sketch_of(samples, **kwargs):
    sketch = QuantileSketch(**kwargs)
    for sample in samples:
        sketch.add(sample)
    return sketch


def _close(a, b, tol=1e-9):
    if a is None or b is None:
        return a is None and b is None
    return math.isclose(a, b, rel_tol=tol, abs_tol=tol)


# ----------------------------------------------------------------------
# StreamingMoments
# ----------------------------------------------------------------------
class TestStreamingMoments:
    def test_empty_stream(self):
        moments = StreamingMoments()
        assert moments.count == 0
        assert moments.variance is None
        assert moments.std is None
        assert moments.as_dict() == {"count": 0, "mean": None,
                                     "variance": None}

    @given(samples=st.lists(values, min_size=1, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_matches_numpy_batch(self, samples):
        moments = _moments_of(samples)
        data = np.array(samples, dtype=float)
        assert moments.count == len(samples)
        assert _close(moments.mean, float(data.mean()), tol=1e-7)
        assert _close(moments.variance, float(data.var()), tol=1e-6) or \
            abs(moments.variance - float(data.var())) <= 1e-6 * max(
                1.0, float(np.abs(data).max()) ** 2)

    @given(a=value_lists, b=value_lists)
    @settings(max_examples=60, deadline=None)
    def test_merge_commutes(self, a, b):
        ab = _moments_of(a).merge(_moments_of(b))
        ba = _moments_of(b).merge(_moments_of(a))
        assert ab.count == ba.count
        assert _close(ab.mean, ba.mean, tol=1e-7) or ab.count == 0
        if ab.count:
            assert _close(ab.variance, ba.variance, tol=1e-6) or \
                abs(ab.variance - ba.variance) <= 1e-6

    @given(a=value_lists, b=value_lists, c=value_lists)
    @settings(max_examples=60, deadline=None)
    def test_merge_associates(self, a, b, c):
        left = _moments_of(a).merge(_moments_of(b)).merge(_moments_of(c))
        right = _moments_of(a).merge(
            _moments_of(b).merge(_moments_of(c)))
        assert left.count == right.count
        if left.count:
            assert _close(left.mean, right.mean, tol=1e-7)
            assert _close(left.variance, right.variance, tol=1e-6) or \
                abs(left.variance - right.variance) <= 1e-6

    def test_merge_with_empty_is_identity(self):
        moments = _moments_of([1.0, 2.0, 3.0])
        before = moments.as_dict()
        moments.merge(StreamingMoments())
        assert moments.as_dict() == before
        fresh = StreamingMoments().merge(_moments_of([1.0, 2.0, 3.0]))
        assert fresh.as_dict() == before

    def test_copy_is_independent(self):
        moments = _moments_of([1.0, 2.0])
        twin = moments.copy()
        twin.add(100.0)
        assert moments.count == 2
        assert twin.count == 3


# ----------------------------------------------------------------------
# QuantileSketch — exact mode
# ----------------------------------------------------------------------
class TestSketchExactMode:
    def test_empty(self):
        sketch = QuantileSketch()
        assert len(sketch) == 0
        assert sketch.median() is None
        assert sketch.quantile(0.9) is None

    def test_validation(self):
        with pytest.raises(ValueError, match="exact_capacity"):
            QuantileSketch(exact_capacity=-1)
        with pytest.raises(ValueError, match="buffer_size"):
            QuantileSketch(buffer_size=1)
        with pytest.raises(ValueError, match="quantile"):
            _sketch_of([1.0]).quantile(1.5)

    @given(samples=st.lists(values, min_size=1, max_size=300))
    @settings(max_examples=60, deadline=None)
    def test_exactly_matches_numpy_on_small_inputs(self, samples):
        """Below capacity, median/p90 equal the batch numpy calls *bit for
        bit* — the property that makes streaming summaries byte-identical
        to batch ones."""
        sketch = _sketch_of(samples)
        assert sketch.is_exact
        data = np.array(samples, dtype=float)
        assert sketch.median() == float(np.median(data))
        assert sketch.quantile(0.9) == float(np.percentile(data, 90))
        assert sketch.quantile(0.5) == float(np.percentile(data, 50))

    @given(a=st.lists(values, max_size=100), b=st.lists(values, max_size=100))
    @settings(max_examples=60, deadline=None)
    def test_exact_merge_equals_concatenation(self, a, b):
        merged = _sketch_of(a).merge(_sketch_of(b))
        assert merged.is_exact
        assert merged.count == len(a) + len(b)
        assert merged.samples == list(map(float, a)) + list(map(float, b))
        if a or b:
            data = np.array(a + b, dtype=float)
            assert merged.median() == float(np.median(data))
            assert merged.quantile(0.9) == float(np.percentile(data, 90))

    @given(a=st.lists(values, max_size=60), b=st.lists(values, max_size=60),
           c=st.lists(values, max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_exact_merge_queries_commute_and_associate(self, a, b, c):
        """numpy sorts internally, so exact-mode queries only see the
        multiset: any merge order answers identically."""
        if not (a or b or c):
            return
        orders = [
            _sketch_of(a).merge(_sketch_of(b)).merge(_sketch_of(c)),
            _sketch_of(c).merge(_sketch_of(a)).merge(_sketch_of(b)),
            _sketch_of(a).merge(_sketch_of(b).merge(_sketch_of(c))),
        ]
        reference = orders[0]
        for candidate in orders[1:]:
            assert candidate.count == reference.count
            assert candidate.median() == reference.median()
            assert candidate.quantile(0.9) == reference.quantile(0.9)

    def test_self_merge_doubles(self):
        sketch = _sketch_of([1.0, 2.0, 3.0])
        sketch.merge(sketch)
        assert sketch.count == 6
        assert sketch.samples == [1.0, 2.0, 3.0, 1.0, 2.0, 3.0]

    def test_samples_raise_once_compressed(self):
        sketch = _sketch_of(range(100), exact_capacity=16, buffer_size=8)
        assert not sketch.is_exact
        with pytest.raises(ValueError, match="compressed"):
            sketch.samples


# ----------------------------------------------------------------------
# QuantileSketch — compressed mode error bound
# ----------------------------------------------------------------------
def _rank_error(sketch, data_sorted, q):
    """|empirical rank of the sketch's answer - q|, as a fraction."""
    answer = sketch.quantile(q)
    # rank range of the answer in the true data (handles duplicates)
    lo = np.searchsorted(data_sorted, answer, side="left")
    hi = np.searchsorted(data_sorted, answer, side="right")
    target = q * len(data_sorted)
    if lo <= target <= hi:
        return 0.0
    return min(abs(lo - target), abs(hi - target)) / len(data_sorted)


class TestSketchCompressedMode:
    @pytest.mark.parametrize("distribution", ["uniform", "exponential",
                                              "lognormal"])
    def test_rank_error_below_one_percent_on_large_streams(self, distribution):
        rng = np.random.default_rng(12345)
        n = 60_000
        if distribution == "uniform":
            data = rng.uniform(0.0, 1e4, size=n)
        elif distribution == "exponential":
            data = rng.exponential(scale=900.0, size=n)
        else:
            data = rng.lognormal(mean=5.0, sigma=2.0, size=n)
        sketch = _sketch_of(data)
        assert not sketch.is_exact
        assert sketch.count == n
        data_sorted = np.sort(data)
        for q in (0.1, 0.25, 0.5, 0.75, 0.9, 0.99):
            assert _rank_error(sketch, data_sorted, q) <= 0.01, \
                f"{distribution} q={q}"

    def test_rank_error_holds_under_chunked_merging(self):
        """Merging many part-streams must stay within the same bound."""
        rng = np.random.default_rng(99)
        data = rng.exponential(scale=100.0, size=50_000)
        merged = QuantileSketch()
        for chunk in np.array_split(data, 13):
            merged.merge(_sketch_of(chunk))
        assert merged.count == len(data)
        data_sorted = np.sort(data)
        for q in (0.5, 0.9):
            assert _rank_error(merged, data_sorted, q) <= 0.01

    def test_sorted_and_reversed_feeds_agree_within_bound(self):
        data = np.arange(30_000, dtype=float)
        forward = _sketch_of(data)
        backward = _sketch_of(data[::-1])
        for q in (0.5, 0.9):
            for sketch in (forward, backward):
                assert abs(sketch.quantile(q) - q * len(data)) \
                    <= 0.01 * len(data)

    def test_copy_is_independent_when_compressed(self):
        sketch = _sketch_of(range(10_000))
        twin = sketch.copy()
        twin.add(1e12)
        assert twin.count == sketch.count + 1
        assert sketch.quantile(0.5) == sketch.copy().quantile(0.5)


# ----------------------------------------------------------------------
# StreamingSummary vs the batch summarize()
# ----------------------------------------------------------------------
def _simulate(dataset_key, algorithm="Epidemic", seed=11):
    trace = load_dataset(dataset_key, scale=_SCALE, contact_scale=_SCALE)
    messages = PoissonMessageWorkload(rate=_RATE).generate(trace, seed=seed)
    return ForwardingSimulator(trace, algorithm_by_name(algorithm)).run(messages)


class TestStreamingSummary:
    @pytest.mark.parametrize("dataset_key", PAPER_DATASET_KEYS)
    def test_as_row_byte_identical_to_batch_on_paper_standins(self,
                                                              dataset_key):
        """The headline acceptance check: fold a real simulation result
        through the streaming path and the batch path — the rows must be
        *equal*, not approximately equal."""
        result = _simulate(dataset_key)
        stream = StreamingSummary(result.algorithm)
        stream.observe_result(result)
        assert stream.sketch.is_exact
        assert stream.summary().as_row() == summarize(result).as_row()
        assert stream.summary() == summarize(result)

    def test_outcome_by_outcome_fold_matches_whole_result_fold(self):
        result = _simulate(PAPER_DATASET_KEYS[0])
        whole = StreamingSummary(result.algorithm)
        whole.observe_result(result)
        piecewise = StreamingSummary(result.algorithm)
        for outcome in result.outcomes:
            piecewise.observe_outcome(outcome)
        piecewise.add_copies(result.copies_sent)
        assert piecewise.summary() == whole.summary()

    def test_merge_of_run_streams_matches_pooled_batch(self):
        """Two runs folded separately then merged == the batch summary of
        both runs' outcomes pooled (exact mode)."""
        first = _simulate(PAPER_DATASET_KEYS[0], seed=11)
        second = _simulate(PAPER_DATASET_KEYS[0], seed=12)
        merged_stream = StreamingSummary(first.algorithm)
        for result in (first, second):
            part = StreamingSummary(result.algorithm)
            part.observe_result(result)
            merged_stream.merge(part)
        from repro.forwarding.simulator import SimulationResult

        pooled = SimulationResult(algorithm=first.algorithm,
                                  trace_name=first.trace_name)
        pooled.outcomes.extend(first.outcomes)
        pooled.outcomes.extend(second.outcomes)
        pooled.copies_sent = first.copies_sent + second.copies_sent
        assert merged_stream.summary().as_row() == \
            summarize(pooled).as_row()

    def test_unknown_copies_poison_the_total(self):
        stream = StreamingSummary("x")
        stream.observe(True, 10.0)
        stream.add_copies(5)
        assert stream.copies_sent == 5
        stream.add_copies(None)
        assert stream.copies_sent is None
        assert stream.summary().copies_sent is None

    def test_fault_counters_surface_only_when_stats_seen(self):
        plain = StreamingSummary("x")
        plain.observe(True, 1.0)
        summary = plain.summary()
        assert summary.lost_transfers is None
        assert "lost" not in summary.as_row()

        from repro.sim.engine import ConstrainedSimulationResult, ResourceStats

        stats = ResourceStats()
        stats.lost_transfers = 3
        stats.retransmissions = 2
        stats.node_crashes = 1
        faulty = ConstrainedSimulationResult(
            algorithm="x", trace_name="t", stats=stats, copies_sent=0)
        stream = StreamingSummary("x")
        stream.observe_result(faulty)
        summary = stream.summary()
        assert (summary.lost_transfers, summary.retransmissions,
                summary.node_crashes) == (3, 2, 1)
        row = summary.as_row()
        assert (row["lost"], row["retx"], row["crashes"]) == (3, 2, 1)

    def test_compressed_summary_stays_close_to_batch(self):
        """Past exact capacity the summary degrades gracefully: mean is
        exact (Welford), median/p90 within the rank bound."""
        rng = np.random.default_rng(7)
        delays = rng.exponential(scale=600.0, size=20_000)
        stream = StreamingSummary("big", exact_capacity=1024, buffer_size=256)
        for delay in delays:
            stream.observe(True, float(delay))
        assert not stream.sketch.is_exact
        summary = stream.summary()
        assert summary.num_messages == summary.num_delivered == len(delays)
        assert math.isclose(summary.average_delay, float(delays.mean()),
                            rel_tol=1e-9)
        data_sorted = np.sort(delays)
        for attr, q in (("median_delay", 0.5), ("p90_delay", 0.9)):
            answer = getattr(summary, attr)
            lo = np.searchsorted(data_sorted, answer, side="left")
            hi = np.searchsorted(data_sorted, answer, side="right")
            target = q * len(delays)
            error = (0.0 if lo <= target <= hi
                     else min(abs(lo - target), abs(hi - target)) / len(delays))
            # buffer_size=256 loosens the bound vs the 1024 default
            assert error <= 0.04, f"{attr}: rank error {error}"
