"""Run telemetry: engine counters, phase timers, metrics.json artifacts
and the orchestrator integration (per-job traces + telemetry attachment).
"""

from __future__ import annotations

import json

import pytest

from repro.datasets import PAPER_DATASET_KEYS, load_dataset
from repro.exp.orchestrator import run_experiment
from repro.exp.records import decode_result, encode_record
from repro.exp.spec import ExperimentSpec
from repro.forwarding import PoissonMessageWorkload
from repro.forwarding.algorithms import algorithm_by_name
from repro.obs import (
    METRICS_SCHEMA,
    EngineTelemetry,
    ObsConfig,
    PhaseTimers,
    read_trace,
    write_metrics_json,
)
from repro.sim import DesSimulator

_SCALE = 0.2
_RATE = 0.01

SMALL_SPEC = ExperimentSpec(
    name="obs-small", scenarios=("paper-ttl-tight",),
    protocols=("Epidemic", "Direct Delivery"), seeds=(7,), num_runs=1)


# ----------------------------------------------------------------------
# EngineTelemetry
# ----------------------------------------------------------------------
class TestEngineTelemetry:
    def test_sampling_cadence_and_counters(self):
        telemetry = EngineTelemetry(sample_every=4)
        telemetry.begin(engine="des", algorithm="Epidemic")
        due = [telemetry.event("create", queue_depth=depth)
               for depth in (3, 9, 2, 5, 1, 1, 1, 7)]
        assert due == [False, False, False, True] * 2
        telemetry.sample_buffers(10.0, 42.0)
        telemetry.finish()
        assert telemetry.events == 8
        assert telemetry.events_by_kind == {"create": 8}
        assert telemetry.peak_queue_depth == 9
        assert telemetry.buffer_occupancy == [[10.0, 42.0]]
        assert telemetry.wall_s is not None
        assert telemetry.events_per_s > 0

    def test_begin_resets_between_runs(self):
        telemetry = EngineTelemetry()
        telemetry.begin(engine="des", algorithm="A")
        telemetry.event("create")
        telemetry.finish()
        telemetry.begin(engine="trace", algorithm="B")
        assert telemetry.events == 0
        assert telemetry.events_by_kind == {}
        assert telemetry.wall_s is None
        assert telemetry.events_per_s is None

    def test_as_dict_is_json_ready(self):
        telemetry = EngineTelemetry()
        telemetry.begin(engine="des", algorithm="Epidemic")
        telemetry.event("create", queue_depth=2)
        telemetry.finish()
        payload = telemetry.as_dict()
        assert set(payload) == {"engine", "algorithm", "events",
                                "events_by_kind", "events_per_s",
                                "peak_queue_depth", "buffer_occupancy",
                                "wall_s"}
        json.dumps(payload)  # must not raise

    def test_sample_every_validation(self):
        with pytest.raises(ValueError, match="sample_every"):
            EngineTelemetry(sample_every=0)


# ----------------------------------------------------------------------
# engines under telemetry
# ----------------------------------------------------------------------
class TestEngineIntegration:
    def _run(self, simulator_class, telemetry):
        trace = load_dataset(PAPER_DATASET_KEYS[0], scale=_SCALE,
                             contact_scale=_SCALE)
        messages = PoissonMessageWorkload(rate=_RATE).generate(trace, seed=11)
        return simulator_class(trace, algorithm_by_name("Epidemic"),
                               telemetry=telemetry).run(messages)

    @pytest.mark.parametrize("simulator_class",
                             [DesSimulator], ids=["des"])
    def test_des_run_populates_telemetry(self, simulator_class):
        telemetry = EngineTelemetry(sample_every=8)
        result = self._run(simulator_class, telemetry)
        assert telemetry.engine == "des"
        assert telemetry.algorithm == "Epidemic"
        assert telemetry.events > 0
        assert sum(telemetry.events_by_kind.values()) == telemetry.events
        assert telemetry.peak_queue_depth > 0
        assert telemetry.buffer_occupancy, "sample_every=8 must sample"
        assert telemetry.wall_s is not None
        # sim-time samples are non-decreasing
        times = [point[0] for point in telemetry.buffer_occupancy]
        assert times == sorted(times)
        # telemetry must not perturb the simulation
        bare = self._run(simulator_class, None)
        assert bare.outcomes == result.outcomes
        assert bare.copies_sent == result.copies_sent

    def test_forwarding_simulator_populates_telemetry(self):
        from repro.forwarding import ForwardingSimulator

        telemetry = EngineTelemetry(sample_every=8)
        result = self._run(ForwardingSimulator, telemetry)
        assert telemetry.engine == "trace"
        assert telemetry.events > 0
        bare = self._run(ForwardingSimulator, None)
        assert bare.outcomes == result.outcomes


# ----------------------------------------------------------------------
# PhaseTimers / ObsConfig / write_metrics_json
# ----------------------------------------------------------------------
class TestPhaseTimers:
    def test_phases_accumulate(self):
        timers = PhaseTimers()
        with timers.phase("plan"):
            pass
        with timers.phase("execute"):
            pass
        with timers.phase("execute"):
            pass
        phases = timers.as_dict()
        assert set(phases) == {"plan", "execute"}
        assert all(elapsed >= 0.0 for elapsed in phases.values())

    def test_stop_without_start_is_zero(self):
        assert PhaseTimers().stop("never") == 0.0


class TestObsConfig:
    def test_flags(self):
        assert not ObsConfig().enabled
        assert ObsConfig(trace_dir="t").enabled
        assert not ObsConfig(trace_dir="t").wants_telemetry
        assert ObsConfig(metrics_path="m.json").wants_telemetry
        assert ObsConfig(profile=True).wants_telemetry

    def test_trace_path_naming(self):
        config = ObsConfig(trace_dir="traces")
        path = config.trace_path("a" * 64)
        assert path.name == f"trace-{'a' * 16}.jsonl"
        assert ObsConfig().trace_path("a" * 64) is None


class TestWriteMetricsJson:
    def test_schema_tag_and_parent_creation(self, tmp_path):
        target = tmp_path / "deep" / "metrics.json"
        written = write_metrics_json(target, {"jobs": 3})
        assert written == target
        payload = json.loads(target.read_text())
        assert payload["schema"] == METRICS_SCHEMA
        assert payload["jobs"] == 3


# ----------------------------------------------------------------------
# orchestrator integration
# ----------------------------------------------------------------------
class TestOrchestratorIntegration:
    def test_run_experiment_writes_traces_and_metrics(self, tmp_path):
        obs = ObsConfig(trace_dir=str(tmp_path / "traces"),
                        metrics_path=str(tmp_path / "metrics.json"),
                        profile=True)
        result = run_experiment(SMALL_SPEC, obs=obs)
        assert result.num_executed == 2

        # one well-formed trace per executed job, named by its hash
        for job in result.plan.jobs:
            trace_file = obs.trace_path(job.job_hash)
            assert trace_file.exists(), job.job_hash
            events = read_trace(trace_file)
            assert events
            assert all("event" in record and "t" in record
                       for record in events)

        metrics = json.loads((tmp_path / "metrics.json").read_text())
        assert metrics["schema"] == METRICS_SCHEMA
        assert metrics["jobs"] == metrics["executed"] == 2
        assert metrics["reused"] == metrics["failed"] == 0
        assert len(metrics["engine_runs"]) == 2
        hashes = {job.job_hash for job in result.plan.jobs}
        for run in metrics["engine_runs"]:
            assert run["job_hash"] in hashes
            assert run["events"] > 0
            assert run["engine"] == "des"
        totals = metrics["engine_totals"]
        assert totals["events"] == sum(run["events"]
                                       for run in metrics["engine_runs"])
        assert "execute" in metrics["phases"]

    def test_executed_results_carry_telemetry(self, tmp_path):
        obs = ObsConfig(metrics_path=str(tmp_path / "metrics.json"))
        result = run_experiment(SMALL_SPEC, obs=obs)
        for job in result.plan.jobs:
            telemetry = result.result_for(job).telemetry
            assert telemetry is not None
            assert telemetry["events"] > 0

    def test_telemetry_excluded_from_equality_and_records(self, tmp_path):
        """A result that carries telemetry must stay equal to its stored,
        decoded twin — telemetry is an annotation, not content."""
        store = tmp_path / "results"
        with_obs = run_experiment(
            SMALL_SPEC, store=store,
            obs=ObsConfig(metrics_path=str(tmp_path / "m.json")))
        reused = run_experiment(SMALL_SPEC, store=store)
        assert reused.num_reused == 2
        for job in with_obs.plan.jobs:
            executed = with_obs.result_for(job)
            decoded = reused.result_for(job)
            assert executed.telemetry is not None
            assert decoded.telemetry is None
            assert executed == decoded
            # encoding never persists the telemetry annotation
            record = encode_record(job, executed)
            assert "telemetry" not in json.dumps(record)
            assert decode_result(record) == executed

    def test_no_obs_means_no_artifacts_and_no_telemetry(self, tmp_path):
        result = run_experiment(SMALL_SPEC)
        for job in result.plan.jobs:
            assert result.result_for(job).telemetry is None
        assert list(tmp_path.iterdir()) == []

    def test_obs_on_reused_jobs_writes_metrics_without_engine_runs(
            self, tmp_path):
        """Resume with observability on: nothing executes, but the
        metrics artifact still lands (with empty engine telemetry)."""
        store = tmp_path / "results"
        run_experiment(SMALL_SPEC, store=store)
        obs = ObsConfig(trace_dir=str(tmp_path / "traces"),
                        metrics_path=str(tmp_path / "metrics.json"))
        resumed = run_experiment(SMALL_SPEC, store=store, obs=obs)
        assert resumed.num_executed == 0
        metrics = json.loads((tmp_path / "metrics.json").read_text())
        assert metrics["reused"] == 2
        assert metrics["executed"] == 0
        assert metrics.get("engine_runs", []) == []
        # no job ran, so no trace files
        assert not (tmp_path / "traces").exists()

    def test_parallel_run_matches_serial_with_obs(self, tmp_path):
        """Observability through the process pool: same results, traces
        for every executed job."""
        serial = run_experiment(SMALL_SPEC)
        obs = ObsConfig(trace_dir=str(tmp_path / "traces"))
        parallel = run_experiment(SMALL_SPEC, parallel=True, n_workers=2,
                                  obs=obs)
        for job in serial.plan.jobs:
            assert parallel.result_for(job) == serial.result_for(job)
            assert obs.trace_path(job.job_hash).exists()
