"""Unit tests for the trace-driven forwarding simulator (repro.forwarding.simulator)."""

from __future__ import annotations

import pytest

from repro.contacts import Contact, ContactTrace
from repro.forwarding import (
    EpidemicForwarding,
    ForwardingSimulator,
    FreshForwarding,
    GreedyTotalForwarding,
    Message,
    simulate,
)


@pytest.fixture
def chain_trace() -> ContactTrace:
    return ContactTrace(
        [Contact(0.0, 10.0, 0, 1),
         Contact(30.0, 40.0, 1, 2),
         Contact(60.0, 70.0, 2, 3)],
        nodes=range(4), duration=100.0,
    )


def _message(source, destination, t=0.0, mid=0):
    return Message(id=mid, source=source, destination=destination, creation_time=t)


class TestEpidemicDelivery:
    def test_delivers_along_chain(self, chain_trace):
        result = simulate(chain_trace, EpidemicForwarding(), [_message(0, 3)])
        outcome = result.outcomes[0]
        assert outcome.delivered
        assert outcome.delivery_time == pytest.approx(60.0)
        assert outcome.delay == pytest.approx(60.0)
        assert outcome.hop_count == 3

    def test_direct_delivery_at_contact_start(self, chain_trace):
        result = simulate(chain_trace, EpidemicForwarding(), [_message(0, 1)])
        assert result.outcomes[0].delivery_time == pytest.approx(0.0)

    def test_message_created_during_active_contact_delivers_immediately(self):
        trace = ContactTrace([Contact(0.0, 100.0, 0, 1)], duration=200.0)
        result = simulate(trace, EpidemicForwarding(), [_message(0, 1, t=50.0)])
        outcome = result.outcomes[0]
        assert outcome.delivered
        assert outcome.delivery_time == pytest.approx(50.0)

    def test_undelivered_when_no_route(self, chain_trace):
        result = simulate(chain_trace, EpidemicForwarding(), [_message(0, 3, t=50.0)])
        outcome = result.outcomes[0]
        assert not outcome.delivered
        assert outcome.delay is None
        assert outcome.hop_count is None

    def test_relays_within_simultaneous_contacts(self, dense_burst_trace):
        # Message created before the burst: during the burst every node is in
        # contact with every other, so the message reaches its destination at
        # the burst start through instantaneous relaying.
        result = simulate(dense_burst_trace, EpidemicForwarding(), [_message(0, 3, t=0.0)])
        assert result.outcomes[0].delivery_time == pytest.approx(100.0)

    def test_minimal_progress_overrides_algorithm(self, chain_trace):
        """Even an algorithm that never forwards delivers on direct contact
        with the destination."""

        class NeverForward(EpidemicForwarding):
            name = "Never"

            def should_forward(self, carrier, peer, destination, now, history):
                return False

        result = simulate(chain_trace, NeverForward(), [_message(0, 1)])
        assert result.outcomes[0].delivered

    def test_multiple_messages_tracked_independently(self, chain_trace):
        messages = [_message(0, 3, 0.0, mid=0), _message(2, 3, 0.0, mid=1),
                    _message(3, 0, 0.0, mid=2)]
        result = simulate(chain_trace, EpidemicForwarding(), messages)
        assert result.num_messages == 3
        assert result.outcome_for(0).delivered
        assert result.outcome_for(1).delivered
        assert not result.outcome_for(2).delivered


class TestSelectiveAlgorithms:
    def test_fresh_blocks_relay_without_history(self, chain_trace):
        # Node 1 has never met node 3 when it encounters the carrier, so
        # FRESH refuses the relay and the message never gets beyond 0.
        result = simulate(chain_trace, FreshForwarding(), [_message(0, 3)])
        assert not result.outcomes[0].delivered

    def test_fresh_uses_observed_history(self):
        # 1 meets the destination early, so when the source later meets 1,
        # FRESH hands the message over; 1 meets the destination again and
        # delivers.
        trace = ContactTrace(
            [Contact(0.0, 10.0, 1, 3),
             Contact(30.0, 40.0, 0, 1),
             Contact(60.0, 70.0, 1, 3)],
            nodes=range(4), duration=100.0,
        )
        result = simulate(trace, FreshForwarding(),
                          [Message(id=0, source=0, destination=3, creation_time=20.0)])
        outcome = result.outcomes[0]
        assert outcome.delivered
        assert outcome.delivery_time == pytest.approx(60.0)
        assert outcome.hop_count == 2

    def test_greedy_total_pushes_toward_hub(self, star_trace):
        algorithm = GreedyTotalForwarding()
        message = Message(id=0, source=1, destination=2, creation_time=0.0)
        result = simulate(star_trace, algorithm, [message])
        outcome = result.outcomes[0]
        assert outcome.delivered
        assert outcome.hop_count == 2  # 1 -> hub -> 2

    def test_epidemic_at_least_as_good_as_fresh(self, small_conference_trace):
        from repro.core import random_messages
        from repro.forwarding import messages_from_tuples

        messages = messages_from_tuples(
            random_messages(small_conference_trace, 30, seed=8))
        epidemic = simulate(small_conference_trace, EpidemicForwarding(), messages)
        fresh = simulate(small_conference_trace, FreshForwarding(), messages)
        assert epidemic.success_rate() >= fresh.success_rate()
        for outcome_e, outcome_f in zip(epidemic.outcomes, fresh.outcomes):
            if outcome_f.delivered:
                assert outcome_e.delivered
                assert outcome_e.delivery_time <= outcome_f.delivery_time + 1e-9


class TestCopySemantics:
    def test_handoff_mode_single_copy(self, dense_burst_trace):
        # In hand-off mode the source relinquishes its copy; the message can
        # still reach the destination but only one node holds it at a time.
        result = simulate(dense_burst_trace, EpidemicForwarding(),
                          [_message(0, 3, t=0.0)], copy_semantics="handoff")
        assert result.outcomes[0].delivered

    def test_invalid_copy_semantics(self, dense_burst_trace):
        with pytest.raises(ValueError):
            ForwardingSimulator(dense_burst_trace, EpidemicForwarding(),
                                copy_semantics="multicast")


class TestValidationAndResults:
    def test_rejects_unknown_endpoints(self, chain_trace):
        simulator = ForwardingSimulator(chain_trace, EpidemicForwarding())
        with pytest.raises(ValueError):
            simulator.run([_message(0, 99)])
        with pytest.raises(ValueError):
            simulator.run([_message(99, 0)])

    def test_success_rate_and_average_delay(self, chain_trace):
        messages = [_message(0, 3, 0.0, mid=0), _message(3, 0, 0.0, mid=1)]
        result = simulate(chain_trace, EpidemicForwarding(), messages)
        assert result.success_rate() == pytest.approx(0.5)
        assert result.average_delay() == pytest.approx(60.0)

    def test_empty_message_list(self, chain_trace):
        result = simulate(chain_trace, EpidemicForwarding(), [])
        assert result.num_messages == 0
        assert result.success_rate() == 0.0
        assert result.average_delay() is None

    def test_result_metadata(self, chain_trace):
        result = simulate(chain_trace, EpidemicForwarding(), [_message(0, 1)])
        assert result.algorithm == "Epidemic"
        assert result.trace_name == chain_trace.name

    def test_outcome_for_unknown_id(self, chain_trace):
        result = simulate(chain_trace, EpidemicForwarding(), [_message(0, 1)])
        assert result.outcome_for(123) is None

    def test_stop_on_delivery_does_not_change_metrics(self, small_conference_trace):
        from repro.core import random_messages
        from repro.forwarding import messages_from_tuples

        messages = messages_from_tuples(
            random_messages(small_conference_trace, 15, seed=3))
        eager = simulate(small_conference_trace, EpidemicForwarding(), messages,
                         stop_on_delivery=True)
        full = simulate(small_conference_trace, EpidemicForwarding(), messages,
                        stop_on_delivery=False)
        assert eager.success_rate() == full.success_rate()
        assert eager.delays() == full.delays()
