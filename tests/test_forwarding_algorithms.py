"""Unit tests for the forwarding algorithms (repro.forwarding.algorithms)."""

from __future__ import annotations

import pytest

from repro.contacts import Contact, ContactTrace
from repro.forwarding import (
    DynamicProgrammingForwarding,
    EpidemicForwarding,
    FreshForwarding,
    GreedyForwarding,
    GreedyOnlineForwarding,
    GreedyTotalForwarding,
    OnlineContactHistory,
    default_algorithms,
)

DEST = 9


def _history(records):
    history = OnlineContactHistory()
    for a, b, t in records:
        history.record(a, b, t)
    return history


class TestDefaultAlgorithms:
    def test_six_algorithms_with_paper_names(self):
        names = [a.name for a in default_algorithms()]
        assert names == ["Epidemic", "FRESH", "Greedy", "Greedy Total",
                         "Greedy Online", "Dynamic Programming"]

    def test_fresh_instances_each_call(self):
        first = default_algorithms()
        second = default_algorithms()
        assert all(a is not b for a, b in zip(first, second))

    def test_future_knowledge_flags(self):
        by_name = {a.name: a for a in default_algorithms()}
        assert by_name["Greedy Total"].uses_future_knowledge
        assert by_name["Dynamic Programming"].uses_future_knowledge
        assert not by_name["Epidemic"].uses_future_knowledge
        assert not by_name["FRESH"].uses_future_knowledge
        assert not by_name["Greedy"].uses_future_knowledge
        assert not by_name["Greedy Online"].uses_future_knowledge


class TestEpidemic:
    def test_always_forwards(self):
        algorithm = EpidemicForwarding()
        history = _history([])
        assert algorithm.should_forward(0, 1, DEST, 10.0, history)
        assert algorithm.should_forward(1, 0, DEST, 10.0, history)


class TestFresh:
    def test_forwards_to_more_recent_encounter(self):
        history = _history([(1, DEST, 100.0), (2, DEST, 200.0)])
        algorithm = FreshForwarding()
        assert algorithm.should_forward(1, 2, DEST, 300.0, history)
        assert not algorithm.should_forward(2, 1, DEST, 300.0, history)

    def test_never_met_destination_never_receives(self):
        history = _history([(1, DEST, 100.0)])
        algorithm = FreshForwarding()
        assert not algorithm.should_forward(1, 3, DEST, 300.0, history)

    def test_never_met_carrier_forwards_to_anyone_who_has(self):
        history = _history([(2, DEST, 50.0)])
        algorithm = FreshForwarding()
        assert algorithm.should_forward(4, 2, DEST, 300.0, history)

    def test_tie_does_not_forward(self):
        history = _history([])
        algorithm = FreshForwarding()
        assert not algorithm.should_forward(1, 2, DEST, 300.0, history)


class TestGreedy:
    def test_forwards_to_more_frequent_encounter(self):
        history = _history([(1, DEST, 10.0), (2, DEST, 20.0), (2, DEST, 30.0)])
        algorithm = GreedyForwarding()
        assert algorithm.should_forward(1, 2, DEST, 50.0, history)
        assert not algorithm.should_forward(2, 1, DEST, 50.0, history)

    def test_equal_counts_do_not_forward(self):
        history = _history([(1, DEST, 10.0), (2, DEST, 20.0)])
        algorithm = GreedyForwarding()
        assert not algorithm.should_forward(1, 2, DEST, 50.0, history)

    def test_destination_awareness(self):
        # Node 2 is very social but never met the destination; Greedy ignores it.
        history = _history([(2, 3, 1.0), (2, 4, 2.0), (2, 5, 3.0), (1, DEST, 4.0)])
        algorithm = GreedyForwarding()
        assert not algorithm.should_forward(1, 2, DEST, 10.0, history)


class TestGreedyOnline:
    def test_forwards_to_more_social_node(self):
        history = _history([(2, 3, 1.0), (2, 4, 2.0), (1, 5, 3.0)])
        algorithm = GreedyOnlineForwarding()
        assert algorithm.should_forward(1, 2, DEST, 10.0, history)
        assert not algorithm.should_forward(2, 1, DEST, 10.0, history)

    def test_destination_unaware(self):
        history = _history([(1, DEST, 1.0), (1, DEST, 2.0), (2, 3, 3.0),
                            (2, 4, 4.0), (2, 5, 5.0)])
        algorithm = GreedyOnlineForwarding()
        # 2 has more total contacts even though 1 knows the destination better.
        assert algorithm.should_forward(1, 2, DEST, 10.0, history)


class TestGreedyTotal:
    def test_requires_prepare(self):
        algorithm = GreedyTotalForwarding()
        with pytest.raises(RuntimeError):
            algorithm.should_forward(0, 1, DEST, 0.0, _history([]))

    def test_uses_whole_trace_counts(self, star_trace):
        algorithm = GreedyTotalForwarding()
        algorithm.prepare(star_trace)
        empty_history = _history([])
        # The hub (0) has the most contacts over the full trace, so spokes
        # forward to it even before any contact has been observed online.
        assert algorithm.should_forward(1, 0, 5, 0.0, empty_history)
        assert not algorithm.should_forward(0, 1, 5, 0.0, empty_history)


class TestDynamicProgramming:
    def test_requires_prepare(self):
        algorithm = DynamicProgrammingForwarding()
        with pytest.raises(RuntimeError):
            algorithm.should_forward(0, 1, DEST, 0.0, _history([]))

    def test_forwards_downhill_in_expected_delay(self, star_trace):
        algorithm = DynamicProgrammingForwarding()
        algorithm.prepare(star_trace)
        history = _history([])
        # Spoke 1 sending to spoke 2 should hand the message to the hub.
        assert algorithm.should_forward(1, 0, 2, 0.0, history)
        assert not algorithm.should_forward(0, 1, 2, 0.0, history)

    def test_does_not_forward_to_unreachable_peer(self):
        trace = ContactTrace(
            [Contact(0.0, 10.0, 0, 1), Contact(20.0, 30.0, 0, 2)],
            nodes=range(4), duration=100.0,
        )
        algorithm = DynamicProgrammingForwarding()
        algorithm.prepare(trace)
        history = _history([])
        # Node 3 never meets anyone: its expected delay to any destination is
        # infinite, so it never looks like a better relay.
        assert not algorithm.should_forward(0, 3, 2, 0.0, history)

    def test_table_property_exposed(self, star_trace):
        algorithm = DynamicProgrammingForwarding()
        algorithm.prepare(star_trace)
        assert algorithm.table.distance(1, 2) > 0.0
