"""Delivery-stream equivalence: fast engine vs the reference enumerator.

The fast engine (interned ids, bitmask path sets, prebuilt step indexes,
lazy path reconstruction) must reproduce the reference engine's delivery
stream *exactly* — same paths, same arrival times, same order (including
ties), same ``stopped_early`` flag — on every dataset.  This suite checks
that on all four paper dataset stand-ins plus adversarial small traces, and
also pins the batch/parallel entry points to the serial stream.
"""

from __future__ import annotations

import pytest

from repro.analysis import run_path_explosion_study
from repro.contacts import Contact, ContactTrace
from repro.core import (
    PathEnumerator,
    SpaceTimeGraph,
    enumerate_batch,
    random_messages,
)
from repro.datasets import PAPER_DATASET_KEYS, load_dataset

#: Scaled-down populations keep the suite fast while preserving the regime
#: where stores saturate and the k-cap replacement logic is exercised.
_SCALE = 0.2
_K = 60
_NUM_MESSAGES = 6


def _assert_streams_equal(fast, reference, context=""):
    assert fast.source == reference.source, context
    assert fast.destination == reference.destination, context
    assert fast.creation_time == reference.creation_time, context
    assert fast.stopped_early == reference.stopped_early, context
    assert fast.steps_processed == reference.steps_processed, context
    assert fast.num_deliveries == reference.num_deliveries, context
    for position, (a, b) in enumerate(zip(fast.deliveries, reference.deliveries)):
        where = f"{context} delivery {position}"
        assert a.time == b.time, where
        assert a.step == b.step, where
        assert a.path == b.path, where


@pytest.mark.parametrize("dataset_key", PAPER_DATASET_KEYS)
def test_paper_dataset_stream_equivalence(dataset_key):
    trace = load_dataset(dataset_key, scale=_SCALE, contact_scale=_SCALE)
    graph = SpaceTimeGraph(trace, delta=10.0)
    fast = PathEnumerator(graph, k=_K, engine="fast")
    reference = PathEnumerator(graph, k=_K, engine="reference")
    for message in random_messages(trace, _NUM_MESSAGES, seed=99):
        source, destination, creation_time = message
        fast_result = fast.enumerate(source, destination, creation_time,
                                     max_total_deliveries=_K)
        ref_result = reference.enumerate(source, destination, creation_time,
                                         max_total_deliveries=_K)
        _assert_streams_equal(fast_result, ref_result,
                              context=f"{dataset_key} {message}")


def test_equivalence_without_delivery_cap():
    """Uncapped enumeration exercises the k-per-step stop rule in both."""
    trace = load_dataset("infocom06-9-12", scale=_SCALE, contact_scale=_SCALE)
    graph = SpaceTimeGraph(trace, delta=10.0)
    fast = PathEnumerator(graph, k=25, engine="fast")
    reference = PathEnumerator(graph, k=25, engine="reference")
    for message in random_messages(trace, 4, seed=17):
        source, destination, creation_time = message
        _assert_streams_equal(
            fast.enumerate(source, destination, creation_time),
            reference.enumerate(source, destination, creation_time),
            context=f"uncapped {message}",
        )


def test_equivalence_with_max_steps_horizon():
    trace = load_dataset("conext06-9-12", scale=_SCALE, contact_scale=_SCALE)
    graph = SpaceTimeGraph(trace, delta=10.0)
    fast = PathEnumerator(graph, k=_K, engine="fast")
    reference = PathEnumerator(graph, k=_K, engine="reference")
    source, destination, creation_time = random_messages(trace, 1, seed=3)[0]
    for horizon in (1, 7, 40):
        _assert_streams_equal(
            fast.enumerate(source, destination, creation_time, max_steps=horizon),
            reference.enumerate(source, destination, creation_time,
                                max_steps=horizon),
            context=f"horizon={horizon}",
        )


def test_equivalence_undeliverable_message():
    """A destination with no contacts: both engines exhaust the window."""
    contacts = [Contact(0.0, 20.0, 0, 1), Contact(40.0, 60.0, 1, 2)]
    trace = ContactTrace(contacts, nodes=range(4), duration=100.0, name="iso")
    graph = SpaceTimeGraph(trace, delta=10.0)
    for engine in ("fast", "reference"):
        result = PathEnumerator(graph, k=10, engine=engine).enumerate(0, 3, 0.0)
        assert not result.delivered
        assert not result.stopped_early
        assert result.steps_processed == graph.num_steps


def test_equivalence_tiny_tie_heavy_trace():
    """Many same-step same-hop deliveries: tie order must match too."""
    contacts = [
        Contact(0.0, 30.0, 0, 1),
        Contact(0.0, 30.0, 0, 2),
        Contact(0.0, 30.0, 0, 3),
        Contact(10.0, 30.0, 1, 4),
        Contact(10.0, 30.0, 2, 4),
        Contact(10.0, 30.0, 3, 4),
        Contact(12.0, 30.0, 1, 2),
        Contact(14.0, 30.0, 2, 3),
    ]
    trace = ContactTrace(contacts, nodes=range(5), duration=60.0, name="ties")
    graph = SpaceTimeGraph(trace, delta=10.0)
    fast = PathEnumerator(graph, k=50, engine="fast")
    reference = PathEnumerator(graph, k=50, engine="reference")
    _assert_streams_equal(fast.enumerate(0, 4, 0.0), reference.enumerate(0, 4, 0.0),
                          context="tie-heavy")


def test_seed_stream_preserved_across_store_reinsertion():
    """Pruning the store must not change processing order vs the seed.

    Node A (20) delivers at step 1, its store entry is pruned, and it
    re-receives at step 4.  In the seed implementation the store key kept
    its original dict position (first-insertion order); both engines must
    reproduce that, otherwise the k-cap keeps different equal-hop paths.
    The expected streams below were captured from the seed commit.
    """
    contacts = [
        Contact(0.0, 5.0, 10, 20),    # S-A
        Contact(10.0, 15.0, 20, 99),  # A-D: A delivers, store entry pruned
        Contact(20.0, 25.0, 10, 30),  # S-B
        Contact(30.0, 35.0, 10, 40),  # S-X
        Contact(40.0, 45.0, 10, 20),  # S-A again: A re-receives
        Contact(50.0, 55.0, 20, 50),  # A-C
        Contact(50.0, 55.0, 30, 50),  # B-C
        Contact(50.0, 55.0, 40, 50),  # X-C
        Contact(60.0, 65.0, 50, 99),  # C-D
    ]
    trace = ContactTrace(contacts, nodes=[10, 20, 30, 40, 50, 99],
                         duration=80.0, name="reinsertion")
    graph = SpaceTimeGraph(trace, delta=10.0)
    expected_by_k = {
        1: [(10, 20, 99)],
        2: [(10, 20, 99), (10, 20, 50, 99), (10, 30, 50, 99)],
        3: [(10, 20, 99), (10, 20, 50, 99), (10, 30, 50, 99),
            (10, 40, 50, 99)],
    }
    for k, expected in expected_by_k.items():
        for engine in ("fast", "reference"):
            result = PathEnumerator(graph, k=k, engine=engine).enumerate(10, 99, 0.0)
            assert [d.path.nodes for d in result.deliveries] == expected, \
                f"engine={engine} k={k}"


def test_batch_matches_single_message_calls():
    trace = load_dataset("infocom06-3-6", scale=_SCALE, contact_scale=_SCALE)
    graph = SpaceTimeGraph(trace, delta=10.0)
    messages = random_messages(trace, 5, seed=23)
    enumerator = PathEnumerator(graph, k=_K)
    batch = enumerator.enumerate_batch(messages, max_total_deliveries=_K)
    assert len(batch) == len(messages)
    for message, batched in zip(messages, batch):
        source, destination, creation_time = message
        single = enumerator.enumerate(source, destination, creation_time,
                                      max_total_deliveries=_K)
        _assert_streams_equal(batched, single, context=f"batch {message}")


def test_module_level_batch_from_trace():
    trace = load_dataset("conext06-3-6", scale=_SCALE, contact_scale=_SCALE)
    messages = random_messages(trace, 3, seed=31)
    results = enumerate_batch(trace, messages, k=_K, max_total_deliveries=_K)
    assert [r.source for r in results] == [m[0] for m in messages]
    # the cap stops enumeration at the end of the step where it is reached,
    # so a delivering message reports at least one path and stops early once
    # the cap is crossed
    for result in results:
        if result.num_deliveries >= _K:
            assert result.stopped_early


def test_parallel_study_matches_serial():
    trace = load_dataset("infocom06-9-12", scale=_SCALE, contact_scale=_SCALE)
    kwargs = dict(num_messages=6, n_explosion=40, seed=13)
    serial = run_path_explosion_study(trace, **kwargs)
    parallel = run_path_explosion_study(trace, parallel=True, n_workers=2, **kwargs)
    assert len(serial) == len(parallel)
    for a, b in zip(serial, parallel):
        assert a.source == b.source
        assert a.destination == b.destination
        assert a.creation_time == b.creation_time
        assert a.num_paths == b.num_paths
        assert a.optimal_duration == b.optimal_duration
        assert a.time_to_explosion == b.time_to_explosion
        assert a.arrival_durations == b.arrival_durations
        assert a.hop_counts == b.hop_counts


def test_engines_agree_across_delta():
    """Equivalence holds for non-default Δ discretisations too."""
    trace = load_dataset("infocom05", scale=0.3, contact_scale=0.3)
    for delta in (5.0, 30.0):
        graph = SpaceTimeGraph(trace, delta=delta)
        fast = PathEnumerator(graph, k=30, engine="fast")
        reference = PathEnumerator(graph, k=30, engine="reference")
        for message in random_messages(trace, 3, seed=41):
            source, destination, creation_time = message
            _assert_streams_equal(
                fast.enumerate(source, destination, creation_time,
                               max_total_deliveries=30),
                reference.enumerate(source, destination, creation_time,
                                    max_total_deliveries=30),
                context=f"delta={delta} {message}",
            )


def test_rejects_unknown_engine():
    trace = ContactTrace([Contact(0.0, 10.0, 0, 1)], nodes=range(2),
                         duration=20.0, name="mini")
    graph = SpaceTimeGraph(trace, delta=10.0)
    with pytest.raises(ValueError):
        PathEnumerator(graph, k=5, engine="turbo")
