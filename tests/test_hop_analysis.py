"""Unit tests for the hop-gradient analysis (repro.core.hop_analysis)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import (
    Path,
    fraction_of_uphill_hops,
    hop_rate_summary,
    rate_ratios_by_hop,
    rates_by_hop,
    ratio_box_stats,
)

RATES = {0: 0.01, 1: 0.05, 2: 0.20, 3: 0.50, 4: 0.02}


def _path(*nodes):
    return Path(hops=tuple((node, 10.0 * i) for i, node in enumerate(nodes)))


class TestRatesByHop:
    def test_collects_rates_per_position(self):
        per_hop = rates_by_hop([_path(0, 1, 2), _path(4, 2, 3)], RATES)
        assert per_hop[0] == [0.01, 0.02]
        assert per_hop[1] == [0.05, 0.20]
        assert per_hop[2] == [0.20, 0.50]

    def test_exclude_endpoints(self):
        per_hop = rates_by_hop([_path(0, 1, 2, 3)], RATES, include_endpoints=False)
        assert 0 not in per_hop
        assert 3 not in per_hop
        assert per_hop[1] == [0.05]
        assert per_hop[2] == [0.20]

    def test_missing_rate_raises(self):
        with pytest.raises(KeyError):
            rates_by_hop([_path(0, 99)], RATES)


class TestHopRateSummary:
    def test_means_rise_along_uphill_paths(self):
        summaries = hop_rate_summary([_path(0, 1, 2, 3), _path(4, 1, 2, 3)], RATES)
        means = [s.mean_rate for s in summaries]
        assert means == sorted(means)
        assert all(s.count == 2 for s in summaries)

    def test_confidence_interval_zero_for_single_sample(self):
        summaries = hop_rate_summary([_path(0, 1)], RATES)
        assert all(s.ci_half_width == 0.0 for s in summaries)

    def test_confidence_interval_bounds(self):
        summaries = hop_rate_summary([_path(0, 1, 2), _path(4, 3, 2)], RATES)
        for s in summaries:
            assert s.ci_low <= s.mean_rate <= s.ci_high

    def test_max_hop_truncation(self):
        summaries = hop_rate_summary([_path(0, 1, 2, 3)], RATES, max_hop=1)
        assert [s.hop for s in summaries] == [0, 1]

    def test_empty_input(self):
        assert hop_rate_summary([], RATES) == []


class TestRateRatios:
    def test_ratios_per_transition(self):
        ratios = rate_ratios_by_hop([_path(0, 1, 2)], RATES)
        assert ratios[0] == [pytest.approx(5.0)]
        assert ratios[1] == [pytest.approx(4.0)]

    def test_zero_rate_upstream_skipped(self):
        rates = dict(RATES)
        rates[0] = 0.0
        ratios = rate_ratios_by_hop([_path(0, 1, 2)], rates)
        assert 0 not in ratios
        assert 1 in ratios

    def test_missing_rate_raises(self):
        with pytest.raises(KeyError):
            rate_ratios_by_hop([_path(0, 99)], RATES)


class TestRatioBoxStats:
    def test_quartiles_ordered(self):
        paths = [_path(0, 1, 2, 3), _path(4, 1, 3), _path(0, 2, 3)]
        stats = ratio_box_stats(paths, RATES)
        for entry in stats:
            assert entry.whisker_low <= entry.q1 <= entry.median <= entry.q3 <= entry.whisker_high

    def test_transition_labels(self):
        stats = ratio_box_stats([_path(0, 1, 2, 3)], RATES)
        assert [s.transition for s in stats] == ["1/0", "2/1", "3/2"]

    def test_max_transitions(self):
        stats = ratio_box_stats([_path(0, 1, 2, 3)], RATES, max_transitions=2)
        assert len(stats) == 2

    def test_fraction_above_one(self):
        stats = ratio_box_stats([_path(0, 1), _path(3, 0)], RATES)
        assert stats[0].fraction_above_one == pytest.approx(0.5)


class TestUphillFraction:
    def test_all_uphill(self):
        assert fraction_of_uphill_hops([_path(0, 1, 2, 3)], RATES) == 1.0

    def test_all_downhill(self):
        assert fraction_of_uphill_hops([_path(3, 2, 1, 0)], RATES) == 0.0

    def test_mixed(self):
        value = fraction_of_uphill_hops([_path(0, 1, 0), _path(0, 3)], RATES)
        # transitions: 0->1 uphill, 1->0 downhill, 0->3 uphill
        assert value == pytest.approx(2.0 / 3.0)

    def test_empty_input_is_nan(self):
        assert math.isnan(fraction_of_uphill_hops([], RATES))
