"""The repro.scenario spec API: round-trips, golden fixtures, registry,
file-trace ingestion, inline experiment definitions and the CLI."""

from __future__ import annotations

import json
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.contacts import Contact, ContactTrace
from repro.contacts.io import read_contacts, sniff_contact_format, write_csv, write_imote
from repro.datasets import PAPER_DATASET_KEYS
from repro.exp import ExperimentSpec, build_plan, run_experiment
from repro.forwarding import PoissonMessageWorkload, UniformMessageWorkload
from repro.scenario import (
    ConstraintSpec,
    DatasetTraceSpec,
    FileTraceSpec,
    GridRandomWaypointTraceSpec,
    RandomWaypointTraceSpec,
    ScenarioSpec,
    TraceSpec,
    TwoClassTraceSpec,
    WorkloadSpec,
    register_spec,
    scenario_from_dict,
    spec_from_dict,
    spec_kinds,
)
from repro.sim import (
    ChannelSpec,
    ChurnSpec,
    ResourceConstraints,
    get_scenario,
    run_scenario,
    scenarios,
)
from repro.sim.cli import main
from repro.synth.workloads import AllPairsBurstWorkload, HotspotMessageWorkload

GOLDEN_DIR = Path(__file__).parent / "golden"


# ----------------------------------------------------------------------
# hypothesis strategies: one per registered spec kind
# ----------------------------------------------------------------------
finite = dict(allow_nan=False, allow_infinity=False)

dataset_traces = st.builds(
    DatasetTraceSpec,
    key=st.sampled_from(PAPER_DATASET_KEYS + ("infocom05",)),
    scale=st.floats(min_value=0.1, max_value=1.0, **finite),
    contact_scale=st.floats(min_value=0.1, max_value=1.0, **finite),
)

rwp_traces = st.builds(
    RandomWaypointTraceSpec,
    num_nodes=st.integers(min_value=2, max_value=40),
    duration=st.floats(min_value=60.0, max_value=3600.0, **finite),
    step=st.floats(min_value=1.0, max_value=60.0, **finite),
    width=st.floats(min_value=10.0, max_value=500.0, **finite),
    min_speed=st.floats(min_value=0.1, max_value=1.0, **finite),
    max_speed=st.floats(min_value=1.0, max_value=5.0, **finite),
    radio_range=st.floats(min_value=1.0, max_value=50.0, **finite),
    name=st.sampled_from(["", "campus", "atrium"]),
)

grid_rwp_traces = st.builds(
    GridRandomWaypointTraceSpec,
    num_nodes=st.integers(min_value=2, max_value=80),
    duration=st.floats(min_value=60.0, max_value=3600.0, **finite),
    step=st.floats(min_value=5.0, max_value=60.0, **finite),
    width=st.floats(min_value=50.0, max_value=1000.0, **finite),
    height=st.floats(min_value=50.0, max_value=1000.0, **finite),
    min_speed=st.floats(min_value=0.1, max_value=1.0, **finite),
    max_speed=st.floats(min_value=1.0, max_value=5.0, **finite),
    max_pause=st.floats(min_value=0.0, max_value=120.0, **finite),
    radio_range=st.floats(min_value=5.0, max_value=60.0, **finite),
    name=st.sampled_from(["", "city"]),
)

two_class_traces = st.builds(
    TwoClassTraceSpec,
    num_high=st.integers(min_value=1, max_value=12),
    num_low=st.integers(min_value=1, max_value=24),
    duration=st.floats(min_value=300.0, max_value=7200.0, **finite),
    mean_contacts_per_node=st.floats(min_value=5.0, max_value=120.0, **finite),
    high_weight=st.floats(min_value=0.5, max_value=2.0, **finite),
    low_weight=st.floats(min_value=0.05, max_value=0.5, **finite),
)

file_traces = st.builds(
    FileTraceSpec,
    path=st.sampled_from(["trace.csv", "data/contacts.txt"]),
    format=st.sampled_from(["auto", "csv", "imote"]),
    time_origin=st.floats(min_value=0.0, max_value=1e9, **finite),
    duration=st.one_of(st.none(),
                       st.floats(min_value=1.0, max_value=1e6, **finite)),
    name=st.sampled_from(["", "imported"]),
    sha256=st.one_of(st.none(), st.sampled_from(["ab12", "00ff"])),
)

windows = st.one_of(
    st.none(),
    st.tuples(st.just(0.0), st.floats(min_value=10.0, max_value=600.0,
                                      **finite)))

poisson_workloads = st.builds(
    PoissonMessageWorkload,
    rate=st.floats(min_value=0.001, max_value=1.0, **finite),
    generation_window=windows,
    message_size=st.floats(min_value=0.5, max_value=500.0, **finite),
    ttl=st.one_of(st.none(),
                  st.floats(min_value=10.0, max_value=3600.0, **finite)),
)

uniform_workloads = st.builds(
    UniformMessageWorkload,
    num_messages=st.integers(min_value=0, max_value=200),
    generation_window=windows,
    message_size=st.floats(min_value=0.5, max_value=500.0, **finite),
)

burst_workloads = st.builds(
    AllPairsBurstWorkload,
    burst_times=st.tuples(st.floats(min_value=0.0, max_value=500.0, **finite)),
    max_pairs_per_burst=st.one_of(st.none(),
                                  st.integers(min_value=1, max_value=50)),
    message_size=st.floats(min_value=0.5, max_value=100.0, **finite),
)

hotspot_workloads = st.builds(
    HotspotMessageWorkload,
    num_messages=st.integers(min_value=0, max_value=100),
    num_hotspots=st.integers(min_value=2, max_value=4),
    hotspot_share=st.floats(min_value=0.0, max_value=1.0, **finite),
    mode=st.sampled_from(["source", "sink", "both"]),
)

channel_specs = st.builds(
    ChannelSpec,
    loss=st.floats(min_value=0.0, max_value=0.99, **finite),
    delay=st.floats(min_value=0.0, max_value=60.0, **finite),
    jitter=st.floats(min_value=0.0, max_value=10.0, **finite),
    retx_base=st.floats(min_value=0.1, max_value=5.0, **finite),
    retx_cap=st.floats(min_value=5.0, max_value=120.0, **finite),
    retx_limit=st.one_of(st.none(), st.integers(min_value=0, max_value=8)),
)

churn_specs = st.builds(
    ChurnSpec,
    crash_rate=st.floats(min_value=0.0, max_value=0.01, **finite),
    mean_downtime=st.floats(min_value=1.0, max_value=600.0, **finite),
    max_crashes=st.one_of(st.none(), st.integers(min_value=0, max_value=5)),
)

constraint_specs = st.builds(
    ResourceConstraints,
    buffer_capacity=st.one_of(st.none(),
                              st.floats(min_value=1.0, max_value=100.0,
                                        **finite)),
    bandwidth=st.one_of(st.none(),
                        st.floats(min_value=0.5, max_value=100.0, **finite)),
    ttl=st.one_of(st.none(),
                  st.floats(min_value=1.0, max_value=1e5, **finite)),
    drop_policy=st.sampled_from(["drop-oldest", "drop-youngest",
                                 "drop-largest"]),
    channel=st.one_of(st.none(), channel_specs),
    churn=st.one_of(st.none(), churn_specs),
)

#: kind -> strategy; the coverage test pins this against the registry so a
#: newly registered built-in spec type cannot silently skip round-tripping.
SPEC_STRATEGIES = {
    ("trace", "dataset"): dataset_traces,
    ("trace", "rwp"): rwp_traces,
    ("trace", "rwp-grid"): grid_rwp_traces,
    ("trace", "two-class"): two_class_traces,
    ("trace", "file"): file_traces,
    ("workload", "poisson"): poisson_workloads,
    ("workload", "uniform"): uniform_workloads,
    ("workload", "all-pairs-burst"): burst_workloads,
    ("workload", "hotspot"): hotspot_workloads,
    ("constraints", "resource"): constraint_specs,
    ("constraints", "channel"): channel_specs,
    ("constraints", "churn"): churn_specs,
}

scenario_specs = st.builds(
    ScenarioSpec,
    name=st.sampled_from(["study-a", "study-b"]),
    description=st.sampled_from(["", "a study"]),
    trace=st.one_of(rwp_traces, two_class_traces, dataset_traces),
    workload=st.one_of(poisson_workloads, hotspot_workloads),
    constraints=constraint_specs,
    algorithms=st.sampled_from([("Epidemic",),
                                ("Epidemic", "Direct Delivery"),
                                ("PRoPHET", "Binary Spray-and-Wait")]),
    num_runs=st.integers(min_value=1, max_value=3),
    seed=st.integers(min_value=0, max_value=2**31),
    copy_semantics=st.sampled_from(["copy", "handoff"]),
)

every_spec = st.one_of(*SPEC_STRATEGIES.values(), scenario_specs)


class TestRoundTrips:
    def test_every_registered_kind_has_a_strategy(self):
        covered = {(category, kind) for category, kind in SPEC_STRATEGIES}
        registered = {(category, kind)
                      for category in ("trace", "workload", "constraints")
                      for kind in spec_kinds(category)}
        assert covered == registered
        assert spec_kinds("scenario") == ["scenario"]

    @settings(max_examples=60,
              suppress_health_check=[HealthCheck.too_slow])
    @given(spec=every_spec)
    def test_dict_round_trip_is_lossless_and_idempotent(self, spec):
        payload = spec.to_dict()
        # the payload is genuine JSON data (kind included), not objects
        decoded = json.loads(json.dumps(payload))
        rebuilt = type(spec).from_dict(decoded)
        assert rebuilt == spec
        assert rebuilt.to_dict() == payload
        # category-base dispatch builds the same spec from the same dict
        category = type(spec).spec_category
        assert spec_from_dict(category, decoded) == spec
        base = {"trace": TraceSpec, "workload": WorkloadSpec,
                "constraints": ConstraintSpec,
                "scenario": ScenarioSpec}[category]
        assert base.from_dict(decoded) == spec

    @pytest.mark.parametrize("trace_spec", [
        RandomWaypointTraceSpec(num_nodes=6, duration=300.0),
        GridRandomWaypointTraceSpec(num_nodes=40, duration=300.0,
                                    width=200.0, height=200.0),
        TwoClassTraceSpec(num_high=2, num_low=4, duration=600.0,
                          mean_contacts_per_node=10.0),
        DatasetTraceSpec(key="infocom05", scale=0.1, contact_scale=0.1),
    ])
    def test_round_tripped_trace_specs_build_identical_traces(self, trace_spec):
        rebuilt = TraceSpec.from_dict(trace_spec.to_dict())
        seed = 11 if trace_spec.uses_scenario_seed else None
        assert rebuilt.build(seed=seed) == trace_spec.build(seed=seed)

    @pytest.mark.parametrize("workload", [
        PoissonMessageWorkload(rate=0.05, generation_window=(0.0, 200.0)),
        UniformMessageWorkload(num_messages=15),
        AllPairsBurstWorkload(burst_times=(10.0, 50.0), max_pairs_per_burst=8),
        HotspotMessageWorkload(num_messages=20, num_hotspots=2),
    ])
    def test_round_tripped_workloads_generate_identical_messages(self, workload):
        trace = ContactTrace([Contact(0.0, 10.0, 0, 1),
                              Contact(20.0, 40.0, 1, 2)],
                             nodes=range(6), duration=300.0, name="w")
        rebuilt = WorkloadSpec.from_dict(workload.to_dict())
        assert rebuilt.generate(trace, seed=5) == workload.generate(trace, seed=5)


# ----------------------------------------------------------------------
# golden fixtures + registry equivalence
# ----------------------------------------------------------------------
class TestBuiltinScenarios:
    def test_every_builtin_has_a_golden_fixture(self):
        assert sorted(path.name for path in GOLDEN_DIR.glob("scenario_*.json")) \
            == sorted(f"scenario_{name}.json" for name in scenarios())

    @pytest.mark.parametrize("name", list(scenarios()))
    def test_golden_fixture_matches_and_rebuilds(self, name):
        """The registry's dict forms are pinned: an accidental change to a
        built-in scenario (or to the serialization format) fails here."""
        golden = json.loads((GOLDEN_DIR / f"scenario_{name}.json").read_text())
        spec = get_scenario(name)
        assert spec.to_dict() == golden
        assert scenario_from_dict(golden) == spec

    @pytest.mark.parametrize("name", ["paper-ideal", "paper-buffer-crunch",
                                      "paper-ttl-tight", "paper-trickle-link"])
    def test_round_trip_delivery_streams_byte_identical(self, name):
        """JSON round-tripped scenarios produce byte-identical delivery
        streams to the named registry on the paper stand-ins."""
        registry_run = run_scenario(name)
        rebuilt = ScenarioSpec.from_dict(get_scenario(name).to_dict())
        rebuilt_run = run_scenario(rebuilt)
        assert rebuilt_run.trace_name == registry_run.trace_name
        for algorithm in registry_run.results:
            ours = rebuilt_run.pooled(algorithm)
            theirs = registry_run.pooled(algorithm)
            assert [(o.message, o.delivered, o.delivery_time, o.hop_count)
                    for o in ours.outcomes] == \
                [(o.message, o.delivered, o.delivery_time, o.hop_count)
                 for o in theirs.outcomes]
            assert ours.stats.as_dict() == theirs.stats.as_dict()


# ----------------------------------------------------------------------
# registry + validation errors
# ----------------------------------------------------------------------
class TestSpecRegistry:
    def test_unknown_kind_names_the_known_ones(self):
        with pytest.raises(ValueError, match="known kinds:.*two-class"):
            spec_from_dict("trace", {"kind": "teleport"})
        with pytest.raises(ValueError, match="needs a 'kind'"):
            spec_from_dict("workload", {"rate": 1.0})
        with pytest.raises(ValueError, match="unknown spec category"):
            spec_from_dict("wormhole", {"kind": "x"})

    def test_fixed_arity_tuple_fields_reject_length_mismatch(self):
        """zip() truncation must not quietly turn a three-value window
        into a two-value one."""
        with pytest.raises(ValueError, match="generation_window.*expected 2"):
            spec_from_dict("workload", {
                "kind": "poisson",
                "generation_window": [0.0, 600.0, 1200.0]})
        with pytest.raises(ValueError, match="expected 2 values, got 1"):
            spec_from_dict("workload", {
                "kind": "uniform", "num_messages": 3,
                "generation_window": [0.0]})

    def test_unknown_fields_are_rejected_with_valid_ones(self):
        with pytest.raises(ValueError, match="valid fields:.*num_nodes"):
            spec_from_dict("trace", {"kind": "rwp", "nodes": 5})
        with pytest.raises(ValueError, match="unknown scenario spec fields"):
            scenario_from_dict({"name": "x", "trace": {"kind": "rwp"},
                                "workload": {"kind": "poisson"},
                                "algorithm": ["Epidemic"]})

    def test_kind_collisions_are_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            @register_spec
            class ImposterTrace(TraceSpec):  # pragma: no cover - decorator raises
                kind = "rwp"

    def test_third_party_specs_plug_in(self):
        import dataclasses

        from repro.scenario import base as spec_base

        @register_spec
        @dataclasses.dataclass(frozen=True)
        class StaticMeshTraceSpec(TraceSpec):
            kind = "test-static-mesh"
            num_nodes: int = 4

            def build(self, seed=None):
                contacts = [Contact(0.0, 10.0, a, a + 1)
                            for a in range(self.num_nodes - 1)]
                return ContactTrace(contacts, nodes=range(self.num_nodes),
                                    duration=100.0, name="mesh")

        try:
            payload = {"kind": "test-static-mesh", "num_nodes": 6}
            spec = spec_from_dict("trace", payload)
            assert spec == StaticMeshTraceSpec(num_nodes=6)
            assert spec.to_dict() == payload
            assert "test-static-mesh" in spec_kinds("trace")
            scenario = scenario_from_dict({
                "name": "meshy", "trace": payload,
                "workload": {"kind": "uniform", "num_messages": 5},
                "algorithms": ["Epidemic"]})
            assert scenario.build_trace().num_nodes == 6
        finally:
            # the registry is process-global; leaving the test kind behind
            # would make the coverage test order-dependent
            spec_base._REGISTRY["trace"].pop("test-static-mesh", None)

    def test_scenario_validates_eagerly(self):
        trace = {"kind": "rwp", "num_nodes": 5}
        workload = {"kind": "poisson", "rate": 0.1}
        with pytest.raises(ValueError, match="unknown workload spec kind"):
            scenario_from_dict({"name": "x", "trace": trace,
                                "workload": {"kind": "resource"}})
        with pytest.raises(ValueError, match="needs name, trace"):
            scenario_from_dict({"workload": workload})
        with pytest.raises(ValueError, match="valid protocols"):
            scenario_from_dict({"name": "x", "trace": trace,
                                "workload": workload,
                                "algorithms": ["Warp Drive"]})
        with pytest.raises(ValueError, match="unknown fields"):
            scenario_from_dict({"name": "x", "trace": trace,
                                "workload": workload,
                                "constraints": {"buffers": 4}})
        with pytest.raises(ValueError, match="drop policy"):
            scenario_from_dict({"name": "x", "trace": trace,
                                "workload": workload,
                                "constraints": {"drop_policy": "coin-flip"}})
        with pytest.raises(ValueError, match="generate"):
            ScenarioSpec(name="x", description="",
                         trace=RandomWaypointTraceSpec(),
                         workload=object(), algorithms=("Epidemic",))

        class CodeOnlyWorkload:
            """Duck-typed workloads still *run*; they just can't serialize."""

            def generate(self, trace, seed=None):
                return []

        code_only = ScenarioSpec(
            name="x", description="", trace=RandomWaypointTraceSpec(),
            workload=CodeOnlyWorkload(), algorithms=("Epidemic",))
        with pytest.raises(TypeError, match="no to_dict"):
            code_only.to_dict()


# ----------------------------------------------------------------------
# file traces
# ----------------------------------------------------------------------
class TestFileTrace:
    @pytest.fixture
    def trace(self) -> ContactTrace:
        contacts = [Contact(0.0, 12.5, 0, 1), Contact(5.0, 30.0, 1, 2),
                    Contact(40.0, 55.0, 0, 2)]
        return ContactTrace(contacts, nodes=range(4), duration=120.0,
                            name="handmade")

    def test_sniff_and_read_both_formats(self, trace, tmp_path):
        csv_path = tmp_path / "t.csv"
        write_csv(trace, csv_path)
        imote_path = tmp_path / "t.txt"
        write_imote(trace, imote_path)
        assert sniff_contact_format(csv_path) == "csv"
        assert sniff_contact_format(imote_path) == "imote"
        assert read_contacts(csv_path) == trace
        # the imote format drops the node universe and observation window;
        # contacts themselves survive
        assert list(read_contacts(imote_path, duration=120.0)) == list(trace)

    def test_file_trace_spec_builds_and_round_trips(self, trace, tmp_path):
        path = tmp_path / "t.csv"
        write_csv(trace, path)
        spec = FileTraceSpec(path=str(path))
        assert spec.build() == trace
        rebuilt = TraceSpec.from_dict(spec.to_dict())
        assert rebuilt == spec
        assert rebuilt.build() == trace
        # a file-backed scenario runs end to end
        scenario = ScenarioSpec(
            name="from-file", description="", trace=spec,
            workload=UniformMessageWorkload(num_messages=6),
            algorithms=("Epidemic",), seed=3)
        result = run_scenario(scenario)
        assert result.trace_name == "handmade"
        assert result.num_messages == 6

    def test_sha256_pin_detects_changed_files(self, trace, tmp_path):
        import hashlib

        path = tmp_path / "t.csv"
        write_csv(trace, path)
        digest = hashlib.sha256(path.read_bytes()).hexdigest()
        pinned = FileTraceSpec(path=str(path), sha256=digest[:12])
        assert pinned.build() == trace
        path.write_text(path.read_text() + "\n")
        with pytest.raises(ValueError, match="does not match"):
            pinned.build()

    def test_bad_formats_are_rejected_eagerly(self):
        with pytest.raises(ValueError, match="unknown contact file format"):
            FileTraceSpec(path="x.csv", format="parquet")
        with pytest.raises(ValueError, match="hex digest"):
            FileTraceSpec(path="x.csv", sha256="not hex!")

    def test_validate_build_reports_missing_file_without_traceback(
            self, tmp_path):
        spec_path = tmp_path / "ghost.json"
        spec_path.write_text(json.dumps({
            "name": "ghost",
            "trace": {"kind": "file", "path": str(tmp_path / "missing.csv")},
            "workload": {"kind": "uniform", "num_messages": 2},
            "algorithms": ["Epidemic"],
        }))
        # structural validation alone passes — the path may not exist yet
        assert main(["scenario", "validate", str(spec_path)]) == 0
        with pytest.raises(SystemExit, match="failed to build"):
            main(["scenario", "validate", str(spec_path), "--build"])


# ----------------------------------------------------------------------
# inline experiment definitions
# ----------------------------------------------------------------------
class TestInlineExperiments:
    def _inline_payload(self):
        return {
            "kind": "scenario",
            "name": "inline-mini",
            "trace": {"kind": "two-class", "num_high": 2, "num_low": 4,
                      "duration": 600.0, "mean_contacts_per_node": 10.0},
            "workload": {"kind": "uniform", "num_messages": 8},
            "constraints": {"buffer_capacity": 3},
            "algorithms": ["Epidemic"],
            "seed": 9,
        }

    def test_experiment_spec_round_trips_inline_scenarios(self):
        spec = ExperimentSpec(name="x",
                              scenarios=("paper-ideal",
                                         self._inline_payload()),
                              protocols=("Epidemic",), seeds=(7,))
        inline = spec.scenarios[1]
        assert isinstance(inline, ScenarioSpec)  # normalized eagerly
        rebuilt = ExperimentSpec.from_dict(json.loads(
            json.dumps(spec.to_dict())))
        assert rebuilt == spec

    def test_inline_hashes_exactly_like_named(self):
        """An inline definition equal to a registry scenario plans the very
        same content-addressed jobs."""
        named = ExperimentSpec(name="x", scenarios=("paper-ttl-tight",),
                               protocols=("Epidemic",), seeds=(7,))
        inline = ExperimentSpec(
            name="x",
            scenarios=(get_scenario("paper-ttl-tight").to_dict(),),
            protocols=("Epidemic",), seeds=(7,))
        assert build_plan(named).job_hashes() == \
            build_plan(inline).job_hashes()

    def test_inline_runs_and_resumes_zero_jobs(self, tmp_path):
        spec = ExperimentSpec.from_dict({
            "name": "inline-run",
            "scenarios": [self._inline_payload()],
            "protocols": ["Epidemic", "Direct Delivery"],
            "seeds": [7],
        })
        store = tmp_path / "results"
        first = run_experiment(spec, store=store)
        assert first.num_executed == 2 and first.num_reused == 0
        again = run_experiment(spec, store=store)
        assert again.num_executed == 0 and again.num_reused == 2
        assert first.table_rows() == again.table_rows()
        # deterministic hashing: a fresh equal spec plans identical hashes
        assert build_plan(spec).job_hashes() == \
            build_plan(ExperimentSpec.from_dict({
                "name": "renamed",
                "scenarios": [self._inline_payload()],
                "protocols": ["Epidemic", "Direct Delivery"],
                "seeds": [7],
            })).job_hashes()

    def test_tournament_accepts_inline_scenarios(self):
        from repro.routing import tournament

        result = tournament.run_tournament(
            protocols=("Epidemic", "Direct Delivery"),
            scenarios=(self._inline_payload(),), seeds=(5,))
        assert result.scenarios == ["inline-mini"]
        rows = result.leaderboard_rows()
        assert {row["protocol"] for row in rows} == \
            {"Epidemic", "Direct Delivery"}

    def test_tournament_rejects_same_name_different_content(self):
        """Cells are keyed by name: a name carrying two contents must fail
        loudly, not silently drop the second configuration."""
        from repro.routing import tournament

        payload = self._inline_payload()
        reseeded = dict(payload, seed=10)
        with pytest.raises(ValueError, match="share the name"):
            tournament.run_tournament(protocols=("Epidemic",),
                                      scenarios=(payload, reseeded),
                                      seeds=(5,))
        # identical content under one name collapses instead of erroring
        result = tournament.run_tournament(
            protocols=("Epidemic",), scenarios=(payload, dict(payload)),
            seeds=(5,))
        assert result.scenarios == ["inline-mini"]

    def test_name_and_equivalent_inline_definition_plan_once(self):
        """A registry name plus an equal inline definition is one scenario,
        not a double-pooled duplicate."""
        doubled = ExperimentSpec(
            name="x",
            scenarios=("paper-ideal", get_scenario("paper-ideal").to_dict()),
            protocols=("Epidemic",), seeds=(7,))
        single = ExperimentSpec(name="x", scenarios=("paper-ideal",),
                                protocols=("Epidemic",), seeds=(7,))
        assert build_plan(doubled).job_hashes() == \
            build_plan(single).job_hashes()

    def test_spec_hashes_survive_module_refactors(self):
        """Registered specs hash by category:kind, not module path, so a
        store keyed on these hashes outlives code moves.  The literals pin
        the format: if either changes, every persistent store is orphaned —
        change them only on purpose."""
        from repro.exp import canonical, stable_hash

        spec = DatasetTraceSpec(key="infocom05", scale=0.5)
        assert canonical(spec)["__type__"] == "spec:trace:dataset"
        assert stable_hash(spec) == "f10b99460ea95c21"
        assert canonical(ResourceConstraints(ttl=900.0))["__type__"] == \
            "spec:constraints:resource"


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestScenarioCli:
    def test_sim_list_shows_spec_metadata(self, capsys):
        assert main(["sim", "list"]) == 0
        out = capsys.readouterr().out
        header = out.splitlines()[0]
        for column in ("trace", "nodes", "workload", "constraints"):
            assert column in header
        assert "two-class" in out and "rwp" in out and "dataset" in out

    def test_scenario_show_validate_kinds(self, capsys, tmp_path):
        assert main(["scenario", "show", "paper-ideal"]) == 0
        shown = json.loads(capsys.readouterr().out)
        assert shown == get_scenario("paper-ideal").to_dict()

        spec_path = tmp_path / "custom.json"
        spec_path.write_text(json.dumps({
            "name": "cli-custom",
            "trace": {"kind": "two-class", "num_high": 2, "num_low": 4,
                      "duration": 600.0, "mean_contacts_per_node": 10.0},
            "workload": {"kind": "uniform", "num_messages": 4},
            "algorithms": ["Epidemic"],
        }))
        assert main(["scenario", "validate", str(spec_path), "--build"]) == 0
        out = capsys.readouterr().out
        assert "valid scenario spec" in out and "built:" in out

        assert main(["scenario", "kinds"]) == 0
        out = capsys.readouterr().out
        assert "two-class" in out and "poisson" in out and "resource" in out

        with pytest.raises(SystemExit, match="no such scenario spec"):
            main(["scenario", "validate", str(tmp_path / "missing.json")])
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"name": "x"}))
        with pytest.raises(SystemExit, match="invalid scenario spec"):
            main(["scenario", "validate", str(bad)])

    def test_sim_run_spec_file(self, capsys, tmp_path):
        spec_path = tmp_path / "custom.json"
        spec_path.write_text(json.dumps({
            "name": "cli-run-custom",
            "trace": {"kind": "two-class", "num_high": 2, "num_low": 4,
                      "duration": 600.0, "mean_contacts_per_node": 10.0},
            "workload": {"kind": "uniform", "num_messages": 4},
            "algorithms": ["Epidemic"],
        }))
        assert main(["sim", "run", "--spec", str(spec_path)]) == 0
        out = capsys.readouterr().out
        assert "cli-run-custom" in out
        with pytest.raises(SystemExit, match="exactly one"):
            main(["sim", "run"])
        with pytest.raises(SystemExit, match="exactly one"):
            main(["sim", "run", "paper-ideal", "--spec", str(spec_path)])
