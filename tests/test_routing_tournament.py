"""Tests for the cross-scenario tournament harness and the routing CLI."""

from __future__ import annotations

import json

import pytest

from repro.analysis.tables import format_table
from repro.routing.tournament import run_tournament
from repro.sim.cli import main

PROTOCOLS = ("Epidemic", "Direct Delivery", "Binary Spray-and-Wait")
SCENARIOS = ("paper-ideal", "rwp-courtyard")


@pytest.fixture(scope="module")
def small_tournament():
    return run_tournament(protocols=PROTOCOLS, scenarios=SCENARIOS, seeds=(7,))


class TestRunTournament:
    def test_cells_cover_the_grid(self, small_tournament):
        assert set(small_tournament.cells) == {
            (protocol, scenario, 7)
            for protocol in PROTOCOLS for scenario in SCENARIOS
        }

    def test_paired_workloads(self, small_tournament):
        """Every protocol within a cell sees exactly the same messages."""
        for scenario in SCENARIOS:
            per_protocol = [small_tournament.cells[(p, scenario, 7)]
                            for p in PROTOCOLS]
            ids = [[o.message.id for o in r.outcomes] for r in per_protocol]
            assert ids[0] == ids[1] == ids[2]

    def test_leaderboard_ranked_and_complete(self, small_tournament):
        rows = small_tournament.leaderboard_rows()
        assert [row["rank"] for row in rows] == [1, 2, 3]
        rates = [row["success_rate"] for row in rows]
        assert rates == sorted(rates, reverse=True)
        # flooding beats single-copy direct delivery on these scenarios
        assert rows[0]["protocol"] != "Direct Delivery"
        for row in rows:
            assert row["messages"] > 0
            assert row["copies/delivery"] is not None
            assert {"success_rate", "median_delay_s", "p90_delay_s"} <= set(row)

    def test_leaderboard_table_renders(self, small_tournament):
        table = small_tournament.leaderboard_table()
        assert "protocol" in table and "copies/delivery" in table
        assert format_table(small_tournament.cell_rows())

    def test_deterministic_across_calls(self, small_tournament):
        again = run_tournament(protocols=PROTOCOLS, scenarios=SCENARIOS,
                               seeds=(7,))
        assert again.leaderboard_rows() == small_tournament.leaderboard_rows()

    def test_seeds_change_workloads(self):
        shifted = run_tournament(protocols=("Epidemic",),
                                 scenarios=("paper-ideal",), seeds=(7, 8))
        a = shifted.cells[("Epidemic", "paper-ideal", 7)]
        b = shifted.cells[("Epidemic", "paper-ideal", 8)]
        assert [o.message.creation_time for o in a.outcomes] != \
            [o.message.creation_time for o in b.outcomes]

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one seed"):
            run_tournament(protocols=("Epidemic",),
                           scenarios=("paper-ideal",), seeds=())
        with pytest.raises(KeyError, match="unknown protocol"):
            run_tournament(protocols=("Telepathy",),
                           scenarios=("paper-ideal",))
        with pytest.raises(KeyError, match="unknown scenario"):
            run_tournament(protocols=("Epidemic",), scenarios=("nope",))

    def test_bare_string_selectors_and_alias_dedup(self):
        """A lone name is one name (not an iterable of characters), and
        alias duplicates collapse to a single canonical entry."""
        result = run_tournament(protocols="prophet", scenarios="paper-ideal",
                                seeds=(7,))
        assert result.protocols == ["PRoPHET"]
        assert result.scenarios == ["paper-ideal"]
        deduped = run_tournament(protocols=("prophet", "PRoPHET"),
                                 scenarios=("paper-ideal",), seeds=(7,))
        assert deduped.protocols == ["PRoPHET"]
        assert len(deduped.leaderboard_rows()) == 1

    def test_all_protocols_resolve(self):
        result = run_tournament(protocols="all", scenarios=("paper-ideal",),
                                seeds=(7,))
        assert len(result.protocols) >= 12
        assert len(result.leaderboard_rows()) >= 12


class TestRoutingCli:
    def test_routing_list(self, capsys):
        assert main(["routing", "list"]) == 0
        out = capsys.readouterr().out
        assert "PRoPHET" in out and "Binary Spray-and-Wait" in out

    def test_routing_run(self, capsys):
        assert main(["routing", "run", "paper-ideal",
                     "--protocols", "Epidemic,prophet"]) == 0
        out = capsys.readouterr().out
        assert "PRoPHET" in out and "copies/delivery" in out

    def test_routing_tournament_json(self, tmp_path, capsys):
        payload_path = tmp_path / "tournament.json"
        assert main(["routing", "tournament",
                     "--scenarios", "paper-ideal,rwp-courtyard",
                     "--protocols", "Epidemic,Direct Delivery",
                     "--seed", "7", "--json", str(payload_path)]) == 0
        out = capsys.readouterr().out
        assert "rank" in out
        payload = json.loads(payload_path.read_text())
        assert payload["seeds"] == [7]
        assert len(payload["leaderboard"]) == 2
        assert len(payload["cells"]) == 4

    def test_bad_protocol_name_fails_fast(self):
        with pytest.raises(KeyError, match="unknown protocol"):
            main(["routing", "run", "paper-ideal", "--protocols", "Telepathy"])


class TestSharedPooling:
    """Tournament pooling is the shared merge_constrained_results, not a
    parallel re-implementation (regression for the pooling dedup)."""

    def test_cell_pooling_matches_runner_pooling_field_by_field(self):
        from repro.sim.runner import merge_constrained_results, run_scenario
        from repro.sim.scenarios import get_scenario

        tournament = run_tournament(protocols=PROTOCOLS,
                                    scenarios=("paper-ideal",),
                                    seeds=(7,), num_runs=2)
        spec = get_scenario("paper-ideal").with_overrides(
            algorithms=tuple(PROTOCOLS))
        run = run_scenario(spec, num_runs=2, seed=7)
        for protocol in PROTOCOLS:
            cell = tournament.cells[(protocol, "paper-ideal", 7)]
            pooled = merge_constrained_results(run.results[protocol])
            assert cell.algorithm == pooled.algorithm
            assert cell.trace_name == pooled.trace_name
            assert cell.constraints == pooled.constraints
            assert cell.copies_sent == pooled.copies_sent
            assert cell.stats.as_dict() == pooled.stats.as_dict()
            assert cell.outcomes == pooled.outcomes

    def test_leaderboard_row_matches_merged_summary(self, small_tournament):
        from repro.sim.runner import merge_constrained_results

        rows = {row["protocol"]: row
                for row in small_tournament.leaderboard_rows()}
        for protocol in PROTOCOLS:
            merged = merge_constrained_results(
                small_tournament.pooled(protocol), validate=False)
            row = rows[protocol]
            assert row["messages"] == merged.num_messages
            assert row["delivered"] == merged.num_delivered
            assert row["success_rate"] == round(merged.success_rate(), 3)
