"""Unit tests for the stochastic population process (repro.model.markov)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.model import (
    PathCountProcess,
    PopulationState,
    expected_first_path_time,
    simulate_homogeneous,
)


class TestPopulationState:
    def test_density_sums_to_one(self):
        state = PopulationState(time=1.0, counts=np.array([0, 0, 1, 3, 3]))
        density = state.density()
        assert density.sum() == pytest.approx(1.0)
        assert density[0] == pytest.approx(2 / 5)
        assert density[3] == pytest.approx(2 / 5)

    def test_density_with_cap(self):
        state = PopulationState(time=1.0, counts=np.array([0, 5, 10]))
        density = state.density(max_k=4)
        assert density.size == 5
        assert density[4] == pytest.approx(2 / 3)  # 5 and 10 collapse into the cap

    def test_mean_and_variance(self):
        state = PopulationState(time=0.0, counts=np.array([1.0, 3.0]))
        assert state.mean() == pytest.approx(2.0)
        assert state.variance() == pytest.approx(1.0)

    def test_fraction_with_at_least(self):
        state = PopulationState(time=0.0, counts=np.array([0, 1, 2, 5]))
        assert state.fraction_with_at_least(1) == pytest.approx(0.75)
        assert state.fraction_with_at_least(3) == pytest.approx(0.25)


class TestProcessConstruction:
    def test_scalar_rate_requires_num_nodes(self):
        with pytest.raises(ValueError):
            PathCountProcess(0.1)
        with pytest.raises(ValueError):
            PathCountProcess(0.1, num_nodes=1)

    def test_rejects_negative_rates(self):
        with pytest.raises(ValueError):
            PathCountProcess(-0.1, num_nodes=5)
        with pytest.raises(ValueError):
            PathCountProcess([0.1, -0.2])

    def test_rejects_bad_source(self):
        with pytest.raises(ValueError):
            PathCountProcess(0.1, num_nodes=5, source=9)

    def test_rejects_bad_peer_selection(self):
        with pytest.raises(ValueError):
            PathCountProcess(0.1, num_nodes=5, peer_selection="nearest")

    def test_rates_property(self):
        process = PathCountProcess([0.1, 0.2, 0.3])
        assert process.num_nodes == 3
        assert process.rates.tolist() == [0.1, 0.2, 0.3]


class TestSimulation:
    def test_snapshot_times_match_request(self):
        process = PathCountProcess(0.05, num_nodes=10)
        sample_times = [0.0, 50.0, 100.0]
        snapshots = process.simulate(horizon=100.0, sample_times=sample_times, seed=1)
        assert [s.time for s in snapshots] == sample_times

    def test_initial_state_has_single_path(self):
        process = PathCountProcess(0.05, num_nodes=10, source=3)
        snapshots = process.simulate(horizon=10.0, sample_times=[0.0], seed=1)
        counts = snapshots[0].counts
        assert counts[3] == 1.0
        assert counts.sum() == 1.0

    def test_total_paths_never_decrease(self):
        process = PathCountProcess(0.05, num_nodes=10)
        snapshots = process.simulate(horizon=200.0,
                                     sample_times=np.linspace(0, 200, 9), seed=2)
        totals = [s.counts.sum() for s in snapshots]
        assert totals == sorted(totals)

    def test_reproducible_with_seed(self):
        process = PathCountProcess(0.05, num_nodes=10)
        a = process.simulate(horizon=100.0, sample_times=[100.0], seed=5)
        b = process.simulate(horizon=100.0, sample_times=[100.0], seed=5)
        assert np.array_equal(a[0].counts, b[0].counts)

    def test_zero_rate_never_spreads(self):
        process = PathCountProcess(0.0, num_nodes=5)
        snapshots = process.simulate(horizon=100.0, sample_times=[100.0], seed=1)
        assert snapshots[0].counts.sum() == 1.0

    def test_sample_time_validation(self):
        process = PathCountProcess(0.05, num_nodes=5)
        with pytest.raises(ValueError):
            process.simulate(horizon=10.0, sample_times=[])
        with pytest.raises(ValueError):
            process.simulate(horizon=10.0, sample_times=[20.0])
        with pytest.raises(ValueError):
            process.simulate(horizon=0.0, sample_times=[0.0])

    def test_count_cap_respected(self):
        process = PathCountProcess(2.0, num_nodes=5)
        snapshots = process.simulate(horizon=50.0, sample_times=[50.0], seed=3,
                                     count_cap=100.0)
        assert snapshots[0].counts.max() <= 100.0


class TestAgainstAnalyticModel:
    def test_mean_growth_matches_exponential_prediction(self):
        """Kurtz convergence check: the empirical mean path count should track
        E[S(t)] = (1/N) e^{λt} within statistical error."""
        lam, num_nodes = 0.05, 60
        horizon = 120.0
        sample_times = [40.0, 80.0, 120.0]
        means = simulate_homogeneous(num_nodes, lam, horizon, sample_times,
                                     num_runs=20, seed=11)
        predicted = (1.0 / num_nodes) * np.exp(lam * np.asarray(sample_times))
        ratio = means / predicted
        assert np.all(ratio > 0.4) and np.all(ratio < 2.5)

    def test_first_arrival_times_scale_like_log_n_over_lambda(self):
        lam, num_nodes = 0.1, 50
        process = PathCountProcess(lam, num_nodes=num_nodes)
        horizon = 50 * expected_first_path_time(num_nodes, lam)
        rng = np.random.default_rng(7)
        samples = []
        for _ in range(10):
            arrivals = process.first_arrival_times(horizon=horizon, seed=rng)
            others = [t for node, t in arrivals.items() if node != 0]
            samples.extend(others)
        measured = float(np.mean(samples))
        predicted = expected_first_path_time(num_nodes, lam)
        assert 0.3 * predicted < measured < 3.0 * predicted

    def test_heterogeneous_rates_spread_faster_among_high_rate_nodes(self):
        """Subset path explosion: high-rate nodes accumulate paths sooner."""
        rates = [1.0] * 10 + [0.02] * 10
        process = PathCountProcess(rates, source=0)
        snapshots = process.simulate(horizon=3.0, sample_times=[3.0], seed=13)
        counts = snapshots[0].counts
        high = counts[:10].mean()
        low = counts[10:].mean()
        assert high > low

    def test_rate_weighted_peer_selection_biases_high_rate_nodes(self):
        rates = [1.0] * 5 + [0.05] * 15
        uniform = PathCountProcess(rates, source=0, peer_selection="uniform")
        weighted = PathCountProcess(rates, source=0, peer_selection="rate_weighted")
        t = [2.0]
        uniform_counts = uniform.simulate(horizon=2.0, sample_times=t, seed=3)[0].counts
        weighted_counts = weighted.simulate(horizon=2.0, sample_times=t, seed=3)[0].counts
        # With rate-weighted peer choice, a larger share of the paths should
        # sit on the 5 high-rate nodes.
        def high_share(counts):
            total = counts.sum()
            return counts[:5].sum() / total if total else 0.0
        assert high_share(weighted_counts) >= high_share(uniform_counts) - 0.1

    def test_mean_path_counts_validation(self):
        process = PathCountProcess(0.1, num_nodes=5)
        with pytest.raises(ValueError):
            process.mean_path_counts(10.0, [5.0], num_runs=0)
