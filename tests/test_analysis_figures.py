"""Unit tests for the per-figure data builders (repro.analysis.figures)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    figure1_contact_timeseries,
    figure2_space_time_graph_example,
    figure4_duration_and_explosion_cdfs,
    figure5_duration_vs_explosion,
    figure6_path_growth,
    figure7_contact_count_cdfs,
    figure8_pair_type_scatter,
    figure9_delay_vs_success,
    figure10_delay_distributions,
    figure11_reception_times,
    figure12_paths_taken,
    figure13_pair_type_performance,
    figure14_hop_rates,
    figure15_rate_ratios,
    message_delays_by_algorithm,
    run_forwarding_study,
    run_path_explosion_study,
)
from repro.core import PairType
from repro.forwarding import EpidemicForwarding, FreshForwarding, Message


@pytest.fixture(scope="module")
def records(small_conference_trace_module):
    return run_path_explosion_study(small_conference_trace_module, num_messages=25,
                                    n_explosion=30, seed=5, keep_paths=True)


@pytest.fixture(scope="module")
def comparison(small_conference_trace_module):
    return run_forwarding_study(
        small_conference_trace_module,
        algorithms=[EpidemicForwarding(), FreshForwarding()],
        message_rate=0.02, seed=6,
    )


@pytest.fixture(scope="module")
def small_conference_trace_module():
    from repro.synth import ConferenceTraceGenerator

    generator = ConferenceTraceGenerator(
        num_nodes=20, num_stationary=4, duration=3600.0,
        mean_contacts_per_node=40.0, mean_contact_duration=60.0,
    )
    return generator.generate(seed=42, name="small-conference")


class TestDatasetFigures:
    def test_figure1_series_per_dataset(self, small_conference_trace_module):
        data = figure1_contact_timeseries({"a": small_conference_trace_module})
        bins, counts = data["a"]
        assert counts.sum() == len(small_conference_trace_module)
        assert len(bins) == len(counts)

    def test_figure2_example_structure(self):
        example = figure2_space_time_graph_example()
        assert len(example["vertices"]) == 6  # 3 nodes x 2 steps
        assert len(example["contact_edges"]) == 8
        assert len(example["waiting_edges"]) == 3

    def test_figure7_cdfs(self, small_conference_trace_module):
        data = figure7_contact_count_cdfs({"a": small_conference_trace_module})
        counts, cdf = data["a"]
        assert cdf[-1] == pytest.approx(1.0)
        assert np.all(np.diff(counts) >= 0)


class TestExplosionFigures:
    def test_figure4_cdfs(self, records):
        data = figure4_duration_and_explosion_cdfs({"d": records})
        durations, duration_cdf = data["optimal_path_duration"]["d"]
        te, te_cdf = data["time_to_explosion"]["d"]
        assert durations.size > 0
        assert te.size > 0
        assert duration_cdf[-1] == pytest.approx(1.0)
        assert te_cdf[-1] == pytest.approx(1.0)

    def test_figure5_points(self, records):
        points = figure5_duration_vs_explosion(records)
        exploded = [r for r in records if r.exploded]
        assert len(points) == len(exploded)
        assert all(t1 >= 0 and te >= 0 for t1, te in points)

    def test_figure6_growth(self, records):
        growth = figure6_path_growth(records, te_threshold=0.0, bin_seconds=10.0,
                                     horizon=200.0)
        assert growth.num_messages > 0
        assert np.all(np.diff(growth.mean_cumulative_paths) >= 0)

    def test_figure6_empty_when_threshold_too_high(self, records):
        growth = figure6_path_growth(records, te_threshold=1e9)
        assert growth.num_messages == 0
        assert growth.growth_rate is None

    def test_figure8_grouping(self, small_conference_trace_module, records):
        groups = figure8_pair_type_scatter(small_conference_trace_module, records)
        assert set(groups) == set(PairType.ordered())
        total_points = sum(len(v) for v in groups.values())
        assert total_points == len(figure5_duration_vs_explosion(records))

    def test_figure11_cumulative_reception(self, records):
        times, cumulative = figure11_reception_times(records, bin_seconds=60.0)
        assert cumulative[-1] == sum(r.num_paths for r in records if r.delivered)
        assert np.all(np.diff(cumulative) >= 0)

    def test_figure12_overlay(self, small_conference_trace_module, records):
        delivered = next(r for r in records if r.delivered)
        message = Message(id=0, source=delivered.source,
                          destination=delivered.destination,
                          creation_time=delivered.creation_time)
        delays = message_delays_by_algorithm(
            small_conference_trace_module, message,
            algorithms=[EpidemicForwarding(), FreshForwarding()])
        summary = figure12_paths_taken(delivered, delays)
        assert summary.burst_counts.sum() == delivered.num_paths
        assert set(summary.algorithm_offsets) == {"Epidemic", "FRESH"}
        epidemic_offset = summary.algorithm_offsets["Epidemic"]
        assert epidemic_offset is not None
        # Epidemic finds the optimal path; the event-driven simulator can be
        # at most one Δ faster than the pooled space-time optimum (and may be
        # somewhat slower when within-step contact ordering matters).
        assert epidemic_offset >= -10.0 - 1e-9

    def test_figure12_requires_delivery(self, records):
        undelivered = [r for r in records if not r.delivered]
        if not undelivered:
            pytest.skip("every sampled message was delivered")
        with pytest.raises(ValueError):
            figure12_paths_taken(undelivered[0], {})


class TestForwardingFigures:
    def test_figure9_points(self, comparison):
        data = figure9_delay_vs_success({"d": comparison})
        assert set(data["d"]) == {"Epidemic", "FRESH"}
        success, delay = data["d"]["Epidemic"]
        assert 0.0 <= success <= 1.0

    def test_figure10_distributions(self, comparison):
        curves = figure10_delay_distributions(comparison)
        delays, scaled_cdf = curves["Epidemic"]
        assert np.all(np.diff(scaled_cdf) >= 0)
        # The curve is scaled by success rate, so it tops out at S_A <= 1.
        assert scaled_cdf[-1] <= 1.0 + 1e-9

    def test_figure13_breakdown(self, comparison):
        data = figure13_pair_type_performance(comparison)
        assert set(data) == {"Epidemic", "FRESH"}
        assert set(data["Epidemic"]) == set(PairType.ordered())


class TestHopFigures:
    def test_figure14_series(self, small_conference_trace_module, records):
        summaries = figure14_hop_rates(small_conference_trace_module, records)
        assert summaries
        assert summaries[0].hop == 0
        assert all(s.count > 0 for s in summaries)

    def test_figure15_boxes(self, small_conference_trace_module, records):
        boxes = figure15_rate_ratios(small_conference_trace_module, records)
        assert boxes
        assert boxes[0].transition == "1/0"
        for box in boxes:
            assert box.q1 <= box.median <= box.q3

    def test_hop_figures_require_paths(self, small_conference_trace_module):
        bare = run_path_explosion_study(small_conference_trace_module,
                                        num_messages=3, n_explosion=5, seed=9,
                                        keep_paths=False)
        with pytest.raises(ValueError):
            figure14_hop_rates(small_conference_trace_module, bare)
