"""Journey reconstruction: causal copy trees from trace-event streams.

The contract under test (see :mod:`repro.obs.journeys`):

* journeys reconstructed from an engine's trace reconcile **exactly** with
  that run's batch results — on the four paper stand-ins the
  journey-derived ``PerformanceSummary.as_row()`` is byte-identical to
  ``summarize(result).as_row()`` (the ISSUE 8 acceptance pin);
* every journey is a valid copy tree (parents held a copy first, hop
  counts increment along edges, nobody receives twice);
* under seeded loss/churn/buffer faults, journey tallies reconcile with
  the engine's :class:`~repro.sim.engine.ResourceStats` counters
  (hypothesis property over fault configurations);
* the per-hop wait/transfer decomposition telescopes to the end-to-end
  delay.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import PAPER_DATASET_KEYS, load_dataset
from repro.forwarding import ForwardingSimulator, PoissonMessageWorkload
from repro.forwarding.algorithms import algorithm_by_name
from repro.forwarding.metrics import summarize
from repro.obs import JourneyBuilder, RecordingTracer, build_journeys
from repro.sim import ChannelSpec, ChurnSpec, DesSimulator, ResourceConstraints

_SCALE = 0.2
_RATE = 0.01


def _load(dataset_key=PAPER_DATASET_KEYS[0]):
    trace = load_dataset(dataset_key, scale=_SCALE, contact_scale=_SCALE)
    messages = PoissonMessageWorkload(rate=_RATE).generate(trace, seed=11)
    return trace, messages


def _traced_forwarding(dataset_key, algorithm="Epidemic"):
    trace, messages = _load(dataset_key)
    tracer = RecordingTracer()
    simulator = ForwardingSimulator(trace, algorithm_by_name(algorithm),
                                    tracer=tracer)
    return simulator.run(messages), tracer


def _traced_des(constraints, algorithm="Epidemic", seed=5):
    trace, messages = _load()
    tracer = RecordingTracer()
    simulator = DesSimulator(trace, algorithm_by_name(algorithm),
                             constraints=constraints, seed=seed,
                             tracer=tracer)
    return simulator.run(messages), tracer


# ----------------------------------------------------------------------
# the acceptance pin: byte-identical batch reconciliation
# ----------------------------------------------------------------------
class TestBatchReconciliation:
    @pytest.mark.parametrize("dataset_key", PAPER_DATASET_KEYS)
    def test_as_row_byte_identical_on_paper_standins(self, dataset_key):
        result, tracer = _traced_forwarding(dataset_key)
        journeys = build_journeys(tracer.events)
        journey_row = journeys.performance_summary("Epidemic").as_row()
        batch_row = summarize(result).as_row()
        assert journey_row == batch_row
        assert journeys.validate() == []

    def test_per_message_outcomes_match(self):
        result, tracer = _traced_forwarding(PAPER_DATASET_KEYS[0])
        journeys = build_journeys(tracer.events)
        assert len(journeys) == result.num_messages
        for outcome in result.outcomes:
            journey = journeys[outcome.message.id]
            assert journey.delivered == outcome.delivered
            assert journey.delivery_time == outcome.delivery_time
            assert journey.hop_count == outcome.hop_count
            assert journey.source == outcome.message.source
            assert journey.destination == outcome.message.destination

    def test_des_row_identical_with_fault_counters(self):
        constraints = ResourceConstraints(channel=ChannelSpec(loss=0.3))
        result, tracer = _traced_des(constraints)
        journeys = build_journeys(tracer.events)
        journey_row = journeys.performance_summary(
            "Epidemic", with_fault_counters=True).as_row()
        assert journey_row == summarize(result).as_row()


# ----------------------------------------------------------------------
# copy-tree structure
# ----------------------------------------------------------------------
class TestCopyTree:
    def test_paths_start_at_source_and_end_at_destination(self):
        result, tracer = _traced_forwarding(PAPER_DATASET_KEYS[0])
        journeys = build_journeys(tracer.events)
        delivered = [j for j in journeys if j.delivered]
        assert delivered
        for journey in delivered:
            path = journey.path()
            assert path is not None
            assert path[0] == journey.source
            assert path[-1] == journey.destination
            assert len(path) == journey.hop_count + 1
            assert len(set(path)) == len(path)  # simple path, no cycles

    def test_decomposition_telescopes_to_total_delay(self):
        constraints = ResourceConstraints(
            bandwidth=5_000.0, channel=ChannelSpec(delay=1.0, jitter=0.5))
        result, tracer = _traced_des(constraints)
        journeys = build_journeys(tracer.events)
        checked = 0
        for journey in journeys:
            decomposition = journey.delay_decomposition()
            if decomposition is None:
                continue
            checked += 1
            assert math.isclose(
                decomposition["wait_s"] + decomposition["transfer_s"],
                journey.delay, rel_tol=1e-9, abs_tol=1e-6)
            assert decomposition["wait_s"] >= 0
            assert decomposition["transfer_s"] >= 0
        assert checked > 0

    def test_unconstrained_transfers_are_instant(self):
        """In the paper's idealized regime delay is pure contact wait."""
        result, tracer = _traced_forwarding(PAPER_DATASET_KEYS[0])
        journeys = build_journeys(tracer.events)
        for journey in journeys:
            decomposition = journey.delay_decomposition()
            if decomposition is not None:
                assert decomposition["transfer_s"] == 0.0

    def test_streaming_feed_equals_bulk_build(self):
        _result, tracer = _traced_forwarding(PAPER_DATASET_KEYS[0])
        builder = JourneyBuilder()
        for event in tracer.events:  # one at a time, as a tail -f would
            builder.feed(event)
        streamed = builder.result()
        bulk = build_journeys(tracer.events)
        assert len(streamed) == len(bulk)
        assert streamed.delays() == bulk.delays()
        assert streamed.copies_sent == bulk.copies_sent

    def test_build_from_jsonl_file(self, tmp_path):
        from repro.obs import JsonlTracer

        trace, messages = _load()
        path = tmp_path / "trace.jsonl"
        with JsonlTracer(path) as tracer:
            result = ForwardingSimulator(
                trace, algorithm_by_name("Epidemic"),
                tracer=tracer).run(messages)
        journeys = build_journeys(path)
        row = journeys.performance_summary("Epidemic").as_row()
        assert row == summarize(result).as_row()

    def test_invalid_tree_is_reported(self):
        builder = JourneyBuilder()
        builder.feed({"event": "create", "t": 0.0, "msg": 1,
                      "src": "a", "dst": "z"})
        # a forward from a node that never held a copy
        builder.feed({"event": "forward", "t": 1.0, "msg": 1,
                      "src": "ghost", "dst": "b", "hops": 3})
        problems = builder.result().validate()
        assert any("never held" in problem for problem in problems)


# ----------------------------------------------------------------------
# fault reconciliation (satellite: hypothesis property)
# ----------------------------------------------------------------------
class TestFaultReconciliation:
    @given(
        loss=st.sampled_from([0.0, 0.15, 0.4]),
        crash_rate=st.sampled_from([0.0, 0.0002, 0.0006]),
        buffer_capacity=st.sampled_from([None, 3, 8]),
        ttl=st.sampled_from([None, 20000.0]),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=12, deadline=None)
    def test_any_seeded_faulty_run_reconciles(self, loss, crash_rate,
                                              buffer_capacity, ttl, seed):
        """ISSUE 8 satellite: any seeded lossy/churn run yields journeys
        whose delivered/dropped/expired tallies reconcile with the
        engine's telemetry counters, and a valid copy tree."""
        constraints = ResourceConstraints(
            buffer_capacity=buffer_capacity, ttl=ttl,
            channel=(ChannelSpec(loss=loss) if loss else None),
            churn=(ChurnSpec(crash_rate=crash_rate) if crash_rate
                   else None))
        result, tracer = _traced_des(constraints, seed=seed)
        journeys = build_journeys(tracer.events)
        assert journeys.reconcile(result.stats) == []
        assert journeys.validate() == []
        assert journeys.num_delivered == result.num_delivered
        assert len(journeys) == result.num_messages

    def test_drop_reason_tallies_match_stats(self):
        constraints = ResourceConstraints(
            buffer_capacity=3, ttl=20000.0,
            channel=ChannelSpec(loss=0.2),
            churn=ChurnSpec(crash_rate=0.0003))
        result, tracer = _traced_des(constraints)
        journeys = build_journeys(tracer.events)
        stats = result.stats
        assert journeys.drop_counts["evicted"] == stats.buffer_evictions
        assert journeys.drop_counts["rejected"] == stats.buffer_rejections
        assert journeys.drop_counts["churn"] == stats.churn_dropped_copies
        assert journeys.drop_counts["cancelled"] == stats.cancelled_transfers
        assert journeys.num_losses == stats.lost_transfers
        assert journeys.num_retransmits == stats.retransmissions
        assert journeys.num_crashes == stats.node_crashes
        assert journeys.num_expired == stats.expired_messages

    def test_expired_journeys_are_annotated(self):
        constraints = ResourceConstraints(ttl=20000.0)
        result, tracer = _traced_des(constraints)
        journeys = build_journeys(tracer.events)
        expired = [j for j in journeys if j.expired_undelivered]
        assert len(expired) == result.stats.expired_messages
        for journey in expired:
            assert not journey.delivered
            assert journey.expired_t is not None
            assert journey.holders == set()  # the expiry wiped every copy
