"""Unit tests for activity profiles (repro.synth.profiles)."""

from __future__ import annotations

import pytest

from repro.synth import (
    ConstantProfile,
    PiecewiseConstantProfile,
    SessionBreakProfile,
    TaperedProfile,
)


class TestConstantProfile:
    def test_default_is_full_activity(self):
        profile = ConstantProfile()
        assert profile(0.0) == 1.0
        assert profile(1e6) == 1.0

    def test_custom_level(self):
        assert ConstantProfile(0.5)(100.0) == 0.5

    def test_rejects_out_of_range_level(self):
        with pytest.raises(ValueError):
            ConstantProfile(1.5)
        with pytest.raises(ValueError):
            ConstantProfile(-0.1)


class TestPiecewiseConstantProfile:
    def test_levels_by_segment(self):
        profile = PiecewiseConstantProfile([100.0, 200.0], [1.0, 0.5, 0.2])
        assert profile(50.0) == 1.0
        assert profile(150.0) == 0.5
        assert profile(250.0) == 0.2

    def test_breakpoint_belongs_to_next_segment(self):
        profile = PiecewiseConstantProfile([100.0], [1.0, 0.3])
        assert profile(100.0) == pytest.approx(0.3)

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            PiecewiseConstantProfile([100.0], [1.0])

    def test_rejects_non_increasing_breakpoints(self):
        with pytest.raises(ValueError):
            PiecewiseConstantProfile([100.0, 100.0], [1.0, 0.5, 0.2])

    def test_rejects_out_of_range_levels(self):
        with pytest.raises(ValueError):
            PiecewiseConstantProfile([100.0], [1.0, 1.5])


class TestTaperedProfile:
    def test_full_activity_before_taper(self):
        profile = TaperedProfile(window_end=1000.0, taper_start=800.0, final_level=0.2)
        assert profile(0.0) == 1.0
        assert profile(800.0) == 1.0

    def test_linear_taper(self):
        profile = TaperedProfile(window_end=1000.0, taper_start=800.0, final_level=0.2)
        assert profile(900.0) == pytest.approx(0.6)
        assert profile(1000.0) == pytest.approx(0.2)

    def test_clamped_after_window_end(self):
        profile = TaperedProfile(window_end=1000.0, taper_start=800.0, final_level=0.2)
        assert profile(1500.0) == pytest.approx(0.2)

    def test_rejects_taper_outside_window(self):
        with pytest.raises(ValueError):
            TaperedProfile(window_end=1000.0, taper_start=1200.0)

    def test_rejects_bad_final_level(self):
        with pytest.raises(ValueError):
            TaperedProfile(window_end=1000.0, taper_start=500.0, final_level=2.0)


class TestSessionBreakProfile:
    def test_alternation(self):
        profile = SessionBreakProfile(session_seconds=100.0, break_seconds=50.0,
                                      session_level=0.4, break_level=1.0)
        assert profile(10.0) == 0.4
        assert profile(120.0) == 1.0
        assert profile(160.0) == 0.4  # second session

    def test_periodicity(self):
        profile = SessionBreakProfile(session_seconds=100.0, break_seconds=50.0)
        assert profile(10.0) == profile(160.0)

    def test_rejects_non_positive_durations(self):
        with pytest.raises(ValueError):
            SessionBreakProfile(session_seconds=0.0)

    def test_rejects_bad_levels(self):
        with pytest.raises(ValueError):
            SessionBreakProfile(session_level=1.2)
