"""Property tests for the resource-constraint machinery.

Hypothesis drives random admit/remove sequences through the buffer layer
(occupancy invariant, eviction order of the drop policies) and random
traces/workloads through the full engine (TTL expiry semantics, capacity
invariant under every drop policy).
"""

from __future__ import annotations

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.contacts import Contact, ContactTrace
from repro.forwarding import Message
from repro.forwarding.algorithms import algorithm_by_name
from repro.sim import (
    DROP_LARGEST,
    DROP_OLDEST,
    DROP_POLICIES,
    DROP_YOUNGEST,
    BufferEntry,
    DesSimulator,
    NodeBuffer,
    ResourceConstraints,
)

# ----------------------------------------------------------------------
# buffer layer
# ----------------------------------------------------------------------
_operations = st.lists(
    st.tuples(
        st.sampled_from(["admit", "remove"]),
        st.integers(min_value=0, max_value=30),       # message id
        st.floats(min_value=0.1, max_value=8.0,       # size
                  allow_nan=False, allow_infinity=False),
        st.floats(min_value=0.0, max_value=100.0,     # receive time
                  allow_nan=False, allow_infinity=False),
    ),
    min_size=1, max_size=60,
)


@settings(max_examples=120, deadline=None)
@given(operations=_operations,
       capacity=st.floats(min_value=0.5, max_value=20.0,
                          allow_nan=False, allow_infinity=False),
       policy=st.sampled_from(DROP_POLICIES))
def test_buffer_occupancy_never_exceeds_capacity(operations, capacity, policy):
    buffer = NodeBuffer(capacity=capacity, policy=policy)
    sequence = 0
    for action, message_id, size, receive_time in operations:
        if action == "admit":
            if message_id in buffer:
                continue
            admitted, evicted = buffer.admit(BufferEntry(
                message_id=message_id, size=size,
                receive_time=receive_time, sequence=sequence))
            sequence += 1
            if size > capacity:
                assert not admitted and not evicted
        else:
            buffer.remove(message_id)
        assert buffer.used <= capacity + 1e-9
        assert buffer.peak_used <= capacity + 1e-9
        total = sum(entry.size for entry in buffer.entries())
        assert buffer.used == pytest.approx(total)


@settings(max_examples=120, deadline=None)
@given(sizes=st.lists(st.floats(min_value=0.2, max_value=2.0,
                                allow_nan=False, allow_infinity=False),
                      min_size=2, max_size=25))
def test_drop_oldest_evicts_in_arrival_order(sizes):
    """Every eviction under drop-oldest removes the earliest-admitted copy,
    so the concatenated eviction stream is ordered by admission sequence
    and matches a FIFO prefix of the admissions."""
    buffer = NodeBuffer(capacity=3.0, policy=DROP_OLDEST)
    evictions = []
    for sequence, size in enumerate(sizes):
        admitted, evicted = buffer.admit(BufferEntry(
            message_id=sequence, size=size,
            receive_time=float(sequence), sequence=sequence))
        assert admitted  # every size fits a 3.0-byte buffer on its own
        evictions.extend(evicted)
    eviction_sequences = [entry.sequence for entry in evictions]
    assert eviction_sequences == sorted(eviction_sequences)
    # FIFO: evicted set is exactly the oldest len(evictions) among the
    # admissions that are no longer stored
    survivors = {entry.sequence for entry in buffer.entries()}
    assert survivors.isdisjoint(eviction_sequences)
    assert eviction_sequences == list(range(len(eviction_sequences)))


def test_drop_youngest_and_drop_largest_victim_choice():
    youngest = NodeBuffer(capacity=2.0, policy=DROP_YOUNGEST)
    for sequence in range(2):
        admitted, evicted = youngest.admit(BufferEntry(
            message_id=sequence, size=1.0, receive_time=float(sequence),
            sequence=sequence))
        assert admitted and not evicted
    admitted, evicted = youngest.admit(BufferEntry(
        message_id=9, size=1.0, receive_time=5.0, sequence=2))
    assert admitted
    assert [entry.message_id for entry in evicted] == [1]  # newest stored copy

    largest = NodeBuffer(capacity=3.0, policy=DROP_LARGEST)
    for message_id, size in ((0, 0.5), (1, 2.0), (2, 0.5)):
        admitted, _ = largest.admit(BufferEntry(
            message_id=message_id, size=size, receive_time=0.0,
            sequence=message_id))
        assert admitted
    admitted, evicted = largest.admit(BufferEntry(
        message_id=3, size=1.0, receive_time=1.0, sequence=3))
    assert admitted
    assert [entry.message_id for entry in evicted] == [1]  # the 2.0-byte copy


def test_buffer_rejects_oversized_entry_without_evicting():
    buffer = NodeBuffer(capacity=1.0, policy=DROP_OLDEST)
    assert buffer.admit(BufferEntry(0, 0.8, 0.0, 0)) == (True, [])
    admitted, evicted = buffer.admit(BufferEntry(1, 1.5, 1.0, 1))
    assert not admitted and not evicted
    assert 0 in buffer and buffer.used == pytest.approx(0.8)


# ----------------------------------------------------------------------
# engine-level properties over random traces
# ----------------------------------------------------------------------
_random_contacts = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=900.0,
                  allow_nan=False, allow_infinity=False),  # start
        st.floats(min_value=0.0, max_value=120.0,
                  allow_nan=False, allow_infinity=False),  # duration
        st.integers(min_value=0, max_value=7),             # node a
        st.integers(min_value=0, max_value=7),             # node b
    ).filter(lambda c: c[2] != c[3]),
    min_size=4, max_size=40,
)

_random_messages = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=7),             # source
        st.integers(min_value=0, max_value=7),             # destination
        st.floats(min_value=0.0, max_value=600.0,
                  allow_nan=False, allow_infinity=False),  # creation
    ).filter(lambda m: m[0] != m[1]),
    min_size=1, max_size=12,
)


def _build_trace(raw_contacts) -> ContactTrace:
    contacts = [Contact(start, min(start + duration, 1024.0), a, b)
                for start, duration, a, b in raw_contacts]
    return ContactTrace(contacts, nodes=range(8), duration=1024.0, name="prop")


def _build_messages(raw_messages, ttl=None):
    return [Message(id=index, source=s, destination=d, creation_time=t, ttl=ttl)
            for index, (s, d, t) in enumerate(raw_messages)]


@settings(max_examples=60, deadline=None)
@given(raw_contacts=_random_contacts, raw_messages=_random_messages,
       ttl=st.floats(min_value=10.0, max_value=400.0,
                     allow_nan=False, allow_infinity=False))
def test_no_delivery_at_or_after_expiry(raw_contacts, raw_messages, ttl):
    """A message is live during [creation, creation + ttl) only."""
    trace = _build_trace(raw_contacts)
    messages = _build_messages(raw_messages, ttl=ttl)
    result = DesSimulator(trace, algorithm_by_name("Epidemic"),
                          constraints=ResourceConstraints()).run(messages)
    for outcome in result.outcomes:
        if outcome.delivered:
            assert outcome.delay is not None
            assert outcome.delay < ttl
    # the constraints-level default ttl must behave identically
    plain = [Message(id=m.id, source=m.source, destination=m.destination,
                     creation_time=m.creation_time) for m in messages]
    via_constraints = DesSimulator(
        trace, algorithm_by_name("Epidemic"),
        constraints=ResourceConstraints(ttl=ttl)).run(plain)
    assert [o.delivered for o in via_constraints.outcomes] == \
        [o.delivered for o in result.outcomes]
    assert [o.delivery_time for o in via_constraints.outcomes] == \
        [o.delivery_time for o in result.outcomes]


def test_expired_copies_are_freed_from_buffers():
    """After expiry the copies stop occupying buffer space: a fresh message
    fits where the expired ones were."""
    contacts = [
        Contact(0.0, 10.0, 0, 1),     # seed node 1's buffer before expiry
        Contact(200.0, 210.0, 1, 2),  # after expiry of the early messages
        Contact(220.0, 230.0, 2, 3),
    ]
    trace = ContactTrace(contacts, nodes=range(4), duration=300.0, name="ttl")
    early = [Message(id=index, source=0, destination=3, creation_time=0.0,
                     ttl=50.0) for index in range(2)]
    late = [Message(id=9, source=1, destination=3, creation_time=190.0)]
    constraints = ResourceConstraints(buffer_capacity=2.0)
    result = DesSimulator(trace, algorithm_by_name("Epidemic"),
                          constraints=constraints).run(early + late)
    # both early messages held node 1's whole buffer, expired at t=50, and
    # were freed — so the late message is created, relayed and delivered
    # with no evictions at node 1
    assert result.stats.expired_messages == 2
    assert result.stats.expired_copies >= 2
    late_outcome = result.outcome_for(9)
    assert late_outcome is not None and late_outcome.delivered
    for outcome in result.outcomes[:2]:
        assert not outcome.delivered


@settings(max_examples=40, deadline=None)
@given(raw_contacts=_random_contacts, raw_messages=_random_messages,
       capacity=st.floats(min_value=1.0, max_value=6.0,
                          allow_nan=False, allow_infinity=False),
       policy=st.sampled_from(DROP_POLICIES))
def test_engine_peak_occupancy_bounded_by_capacity(raw_contacts, raw_messages,
                                                   capacity, policy):
    trace = _build_trace(raw_contacts)
    messages = _build_messages(raw_messages)
    constraints = ResourceConstraints(buffer_capacity=capacity,
                                      drop_policy=policy)
    result = DesSimulator(trace, algorithm_by_name("Epidemic"),
                          constraints=constraints).run(messages)
    assert result.stats.peak_buffer_occupancy <= capacity + 1e-9
    # every delivered message was delivered while alive, and the outcome
    # list covers exactly the submitted workload
    assert len(result.outcomes) == len(messages)


def test_constraints_validation():
    with pytest.raises(ValueError):
        ResourceConstraints(buffer_capacity=0.0)
    with pytest.raises(ValueError):
        ResourceConstraints(bandwidth=-1.0)
    with pytest.raises(ValueError):
        ResourceConstraints(ttl=0.0)
    with pytest.raises(ValueError):
        ResourceConstraints(drop_policy="drop-random")
    with pytest.raises(ValueError):
        NodeBuffer(capacity=-2.0)
    with pytest.raises(ValueError):
        NodeBuffer(policy="nope")


def test_bandwidth_partial_transfer_resumes_on_recontact():
    """A transfer too large for one contact resumes and completes on the
    pair's next contact; delivery time reflects the transferred bytes."""
    contacts = [
        Contact(0.0, 10.0, 0, 1),    # 10 s x 1 B/s = 10 of 15 bytes
        Contact(50.0, 70.0, 0, 1),   # remaining 5 bytes -> done at t=55
    ]
    trace = ContactTrace(contacts, nodes=range(2), duration=100.0, name="bw")
    message = Message(id=0, source=0, destination=1, creation_time=0.0,
                      size=15.0)
    constraints = ResourceConstraints(bandwidth=1.0)
    result = DesSimulator(trace, algorithm_by_name("Epidemic"),
                          constraints=constraints).run([message])
    outcome = result.outcomes[0]
    assert outcome.delivered
    assert outcome.delivery_time == pytest.approx(55.0)
    assert result.stats.partial_transfers == 1
    assert result.stats.resumed_transfers == 1
    assert result.stats.bytes_sent == pytest.approx(15.0)


def test_in_flight_transfer_survives_carrier_eviction():
    """Once the bytes are on the air, evicting the carrier's copy does not
    cancel the transfer: the delivery still completes."""
    contacts = [Contact(0.0, 20.0, 0, 1)]
    trace = ContactTrace(contacts, nodes=range(3), duration=40.0, name="evict")
    messages = [
        Message(id=0, source=0, destination=1, creation_time=0.0, size=10.0),
        # created mid-transfer at the same node; fills the buffer and evicts
        # message 0 (drop-oldest) while its transfer is in flight
        Message(id=1, source=0, destination=2, creation_time=5.0, size=10.0),
    ]
    constraints = ResourceConstraints(bandwidth=1.0, buffer_capacity=10.0)
    result = DesSimulator(trace, algorithm_by_name("Epidemic"),
                          constraints=constraints).run(messages)
    outcome = result.outcome_for(0)
    # eviction 1: message 1 evicts message 0 at node 0 (t=5, mid-transfer);
    # eviction 2: message 1's relay copy later evicts message 0's delivered
    # copy at node 1 — neither stops the in-flight delivery at t=10
    assert result.stats.buffer_evictions == 2
    assert outcome is not None and outcome.delivered
    assert outcome.delivery_time == pytest.approx(10.0)


def test_handoff_delivery_keeps_carrier_copy_on_both_transfer_paths():
    """Under hand-off semantics, delivering to the destination does not cost
    the carrier its copy — with and without bandwidth delays (the
    instantaneous path and the scheduled path must agree)."""
    contacts = [Contact(0.0, 20.0, 0, 1), Contact(30.0, 40.0, 0, 2)]
    trace = ContactTrace(contacts, nodes=range(3), duration=50.0, name="ho")
    message = Message(id=0, source=0, destination=1, creation_time=0.0, size=5.0)
    copies = {}
    for label, constraints in (("instant", ResourceConstraints()),
                               ("delayed", ResourceConstraints(bandwidth=1.0))):
        result = DesSimulator(trace, algorithm_by_name("Epidemic"),
                              constraints=constraints, copy_semantics="handoff",
                              stop_on_delivery=False).run([message])
        assert result.outcomes[0].delivered
        copies[label] = result.copies_sent
    # delivery at t<=5, then node 0 still holds its copy and relays to
    # node 2 during the second contact: 2 copies either way
    assert copies["instant"] == copies["delayed"] == 2


def test_source_rejection_is_not_also_counted_as_expiry():
    trace = ContactTrace([Contact(0.0, 10.0, 0, 1)], nodes=range(2),
                         duration=200.0, name="rej")
    message = Message(id=0, source=0, destination=1, creation_time=0.0,
                      size=3.0, ttl=100.0)
    constraints = ResourceConstraints(buffer_capacity=2.0)
    result = DesSimulator(trace, algorithm_by_name("Epidemic"),
                          constraints=constraints).run([message])
    assert not result.outcomes[0].delivered
    assert result.stats.source_rejections == 1
    assert result.stats.expired_messages == 0
    assert result.stats.expired_copies == 0


def test_handoff_with_bandwidth_never_forks_the_single_copy():
    """While a hand-off transfer is in flight, the carrier must not commit
    the same copy to a second peer: exactly one copy circulates."""
    contacts = [Contact(0.0, 30.0, 0, 1), Contact(0.0, 30.0, 0, 2)]
    trace = ContactTrace(contacts, nodes=range(4), duration=50.0, name="fork")
    message = Message(id=0, source=0, destination=3, creation_time=0.0,
                      size=10.0)
    result = DesSimulator(trace, algorithm_by_name("Epidemic"),
                          constraints=ResourceConstraints(bandwidth=2.0),
                          copy_semantics="handoff").run([message])
    assert result.copies_sent == 1
    # the instantaneous hand-off path agrees
    instant = DesSimulator(trace, algorithm_by_name("Epidemic"),
                           copy_semantics="handoff").run([message])
    assert instant.copies_sent == 1


def test_forwarding_decision_counters_are_per_run():
    trace = ContactTrace([Contact(0.0, 10.0, 0, 1), Contact(20.0, 30.0, 1, 2)],
                         nodes=range(3), duration=40.0, name="counters")
    messages = [Message(id=0, source=0, destination=2, creation_time=0.0)]
    simulator = DesSimulator(trace, algorithm_by_name("Epidemic"))
    first = simulator.run(messages)
    second = simulator.run(messages)
    assert second.stats.forwarding_decisions == first.stats.forwarding_decisions
    assert second.stats.forwarding_approvals == first.stats.forwarding_approvals


def test_bandwidth_serializes_transfers_on_one_link():
    """Two messages over one 1 B/s contact: the second completes after the
    first (the link is busy), not simultaneously."""
    contacts = [Contact(0.0, 30.0, 0, 1)]
    trace = ContactTrace(contacts, nodes=range(2), duration=50.0, name="serial")
    messages = [
        Message(id=0, source=0, destination=1, creation_time=0.0, size=10.0),
        Message(id=1, source=0, destination=1, creation_time=0.0, size=10.0),
    ]
    result = DesSimulator(trace, algorithm_by_name("Epidemic"),
                          constraints=ResourceConstraints(bandwidth=1.0)).run(messages)
    times = sorted(outcome.delivery_time for outcome in result.outcomes)
    assert times == [pytest.approx(10.0), pytest.approx(20.0)]
