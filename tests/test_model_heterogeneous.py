"""Unit tests for the Section 5.2 heterogeneous-rate reasoning (repro.model.heterogeneous)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import NodeClass, PairType
from repro.model import (
    expected_wait_until_high_rate,
    pair_type_predictions,
    relative_magnitude_table,
    subset_growth_rate,
    two_class_process,
)


class TestPredictions:
    def test_all_four_pair_types_covered(self):
        predictions = pair_type_predictions()
        assert set(predictions) == set(PairType.ordered())

    def test_paper_hypotheses(self):
        predictions = pair_type_predictions()
        assert (predictions[PairType.IN_IN].t1, predictions[PairType.IN_IN].te) == ("small", "small")
        assert (predictions[PairType.IN_OUT].t1, predictions[PairType.IN_OUT].te) == ("small", "large")
        assert (predictions[PairType.OUT_IN].t1, predictions[PairType.OUT_IN].te) == ("large", "small")
        assert (predictions[PairType.OUT_OUT].t1, predictions[PairType.OUT_OUT].te) == ("large", "large")

    def test_rationales_present(self):
        assert all(p.rationale for p in pair_type_predictions().values())


class TestSubsetGrowthRate:
    def test_growth_rate_is_holder_rate(self):
        rates = {0: 0.1, 1: 0.2, 2: 0.3}
        assert subset_growth_rate(rates, 0.1) == 0.1
        assert subset_growth_rate(rates, 0.2) == 0.2

    def test_zero_when_no_subset(self):
        rates = {0: 0.1, 1: 0.2}
        assert subset_growth_rate(rates, 0.5) == 0.0

    def test_rejects_negative_rate(self):
        with pytest.raises(ValueError):
            subset_growth_rate({0: 0.1}, -1.0)


class TestExpectedWait:
    def test_formula(self):
        assert expected_wait_until_high_rate(0.01, 0.5) == pytest.approx(200.0)

    def test_lower_rate_waits_longer(self):
        assert (expected_wait_until_high_rate(0.005, 0.5)
                > expected_wait_until_high_rate(0.02, 0.5))

    def test_infinite_when_impossible(self):
        assert expected_wait_until_high_rate(0.0, 0.5) == math.inf
        assert expected_wait_until_high_rate(0.1, 0.0) == math.inf

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_wait_until_high_rate(-1.0, 0.5)
        with pytest.raises(ValueError):
            expected_wait_until_high_rate(0.1, 1.5)


class TestTwoClassProcess:
    def test_rate_vector_layout(self):
        process, rates = two_class_process(3, 5, high_rate=1.0, low_rate=0.1)
        assert process.num_nodes == 8
        assert rates[:3].tolist() == [1.0, 1.0, 1.0]
        assert rates[3:].tolist() == [0.1] * 5

    def test_source_class_selection(self):
        process_in, _ = two_class_process(3, 5, 1.0, 0.1, source_class=NodeClass.IN)
        process_out, _ = two_class_process(3, 5, 1.0, 0.1, source_class=NodeClass.OUT)
        in_start = process_in.simulate(1e-6, [0.0], seed=1)[0].counts
        out_start = process_out.simulate(1e-6, [0.0], seed=1)[0].counts
        assert in_start[0] == 1.0
        assert out_start[3] == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            two_class_process(0, 5, 1.0, 0.1)
        with pytest.raises(ValueError):
            two_class_process(3, 5, 0.1, 1.0)
        with pytest.raises(ValueError):
            two_class_process(3, 5, 1.0, -0.1)

    def test_high_rate_source_explodes_sooner(self):
        """The Section 5.2 argument in simulation: with an 'in' source the
        population accumulates paths faster than with an 'out' source."""
        horizon, t = 4.0, [4.0]
        rng_runs = 15
        totals = {}
        for label, source_class in (("in", NodeClass.IN), ("out", NodeClass.OUT)):
            process, _ = two_class_process(8, 8, high_rate=1.0, low_rate=0.05,
                                           source_class=source_class)
            rng = np.random.default_rng(17)
            run_totals = [process.simulate(horizon, t, seed=rng)[0].counts.sum()
                          for _ in range(rng_runs)]
            totals[label] = float(np.mean(run_totals))
        assert totals["in"] > totals["out"]


class TestRelativeMagnitudeTable:
    def test_labels_match_paper_structure(self):
        measurements = {
            PairType.IN_IN: (50.0, 20.0),
            PairType.IN_OUT: (60.0, 400.0),
            PairType.OUT_IN: (900.0, 30.0),
            PairType.OUT_OUT: (1000.0, 500.0),
        }
        table = relative_magnitude_table(measurements)
        predictions = pair_type_predictions()
        for pair_type, labels in table.items():
            assert labels["t1"] == predictions[pair_type].t1
            assert labels["te"] == predictions[pair_type].te

    def test_partial_measurements_allowed(self):
        measurements = {
            PairType.IN_IN: (50.0, 20.0),
            PairType.OUT_OUT: (1000.0, 500.0),
        }
        table = relative_magnitude_table(measurements)
        assert set(table) == {PairType.IN_IN, PairType.OUT_OUT}

    def test_requires_at_least_two_pair_types(self):
        with pytest.raises(ValueError):
            relative_magnitude_table({PairType.IN_IN: (1.0, 1.0)})
