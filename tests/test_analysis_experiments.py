"""Unit tests for the experiment runners (repro.analysis.experiments)."""

from __future__ import annotations

import pytest

from repro.analysis import (
    message_delays_by_algorithm,
    run_forwarding_study,
    run_path_explosion_study,
)
from repro.forwarding import EpidemicForwarding, FreshForwarding, Message


class TestPathExplosionStudy:
    def test_one_record_per_message(self, small_conference_trace):
        records = run_path_explosion_study(small_conference_trace, num_messages=6,
                                           n_explosion=20, seed=1)
        assert len(records) == 6
        assert all(r.n_explosion == 20 for r in records)

    def test_reproducible_for_same_seed(self, small_conference_trace):
        a = run_path_explosion_study(small_conference_trace, num_messages=4,
                                     n_explosion=10, seed=2)
        b = run_path_explosion_study(small_conference_trace, num_messages=4,
                                     n_explosion=10, seed=2)
        assert [(r.source, r.destination, r.num_paths) for r in a] == \
            [(r.source, r.destination, r.num_paths) for r in b]

    def test_explicit_messages_override(self, small_conference_trace):
        nodes = sorted(small_conference_trace.nodes)
        messages = [(nodes[0], nodes[1], 0.0), (nodes[2], nodes[3], 100.0)]
        records = run_path_explosion_study(small_conference_trace,
                                           n_explosion=5, messages=messages)
        assert [(r.source, r.destination) for r in records] == \
            [(nodes[0], nodes[1]), (nodes[2], nodes[3])]

    def test_keep_paths(self, small_conference_trace):
        records = run_path_explosion_study(small_conference_trace, num_messages=3,
                                           n_explosion=10, seed=3, keep_paths=True)
        delivered = [r for r in records if r.delivered]
        assert delivered
        assert all(len(r.paths) == r.num_paths for r in delivered)


class TestForwardingStudy:
    def test_default_algorithms_present(self, small_conference_trace):
        comparison = run_forwarding_study(small_conference_trace,
                                          message_rate=0.01, seed=1)
        assert set(comparison.results) == {
            "Epidemic", "FRESH", "Greedy", "Greedy Total", "Greedy Online",
            "Dynamic Programming",
        }

    def test_custom_algorithm_subset(self, small_conference_trace):
        comparison = run_forwarding_study(
            small_conference_trace,
            algorithms=[EpidemicForwarding(), FreshForwarding()],
            message_rate=0.01, seed=2,
        )
        assert set(comparison.results) == {"Epidemic", "FRESH"}

    def test_classification_attached(self, small_conference_trace):
        comparison = run_forwarding_study(small_conference_trace,
                                          algorithms=[EpidemicForwarding()],
                                          message_rate=0.01, seed=3)
        assert comparison.classification is not None
        assert comparison.pair_type_summaries()


class TestMessageDelays:
    def test_delays_for_every_algorithm(self, small_conference_trace):
        nodes = sorted(small_conference_trace.nodes)
        message = Message(id=0, source=nodes[0], destination=nodes[-1],
                          creation_time=0.0)
        delays = message_delays_by_algorithm(
            small_conference_trace, message,
            algorithms=[EpidemicForwarding(), FreshForwarding()],
        )
        assert set(delays) == {"Epidemic", "FRESH"}
        if delays["Epidemic"] is not None and delays["FRESH"] is not None:
            assert delays["Epidemic"] <= delays["FRESH"] + 1e-9
