"""Live experiment feeds: incremental store reads, status tracking, the
streaming leaderboard and the ``exp watch`` CLI.

The load-bearing guarantees: :meth:`ResultStore.refresh` parses only the
bytes appended since the last poll (and never consumes a writer's partial
line); :class:`StatusTracker` reproduces ``experiment_status`` payloads
exactly while polling incrementally; :class:`LiveLeaderboard` converges to
the tournament's final standings; and an interrupted observed run keeps
its telemetry artifacts across resume.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.exp import ExperimentSpec, ResultStore, run_experiment
from repro.exp.orchestrator import experiment_status
from repro.obs import LiveLeaderboard, ObsConfig, StatusTracker, read_trace
from repro.obs.feed import StatusTracker as FeedStatusTracker
from repro.routing.tournament import run_tournament
from repro.sim.cli import main

SMALL_SPEC = ExperimentSpec(
    name="feed-small", scenarios=("paper-ttl-tight",),
    protocols=("Epidemic", "Direct Delivery"), seeds=(7,), num_runs=1)


def _record(job_hash, payload=0):
    return {"schema": 1, "job_hash": job_hash, "payload": payload}


def _append_raw(store, data: bytes) -> None:
    store.root.mkdir(parents=True, exist_ok=True)
    with open(store.path, "ab") as handle:
        handle.write(data)


# ----------------------------------------------------------------------
# ResultStore.refresh
# ----------------------------------------------------------------------
class TestStoreRefresh:
    def test_first_refresh_loads_everything(self, tmp_path):
        writer = ResultStore(tmp_path / "s")
        writer.put(_record("a"))
        writer.put(_record("b"))
        reader = ResultStore(tmp_path / "s")
        fresh = reader.refresh()
        assert {record["job_hash"] for record in fresh} == {"a", "b"}
        assert reader.refresh() == []

    def test_refresh_returns_only_appended_records(self, tmp_path):
        writer = ResultStore(tmp_path / "s")
        writer.put(_record("a"))
        reader = ResultStore(tmp_path / "s")
        reader.load()
        assert reader.refresh() == []
        writer.put(_record("b"))
        writer.put(_record("c"))
        fresh = reader.refresh()
        assert [record["job_hash"] for record in fresh] == ["b", "c"]
        assert reader.refresh() == []
        assert reader.get("c") == _record("c")

    def test_partial_final_line_is_left_for_the_next_poll(self, tmp_path):
        """A writer caught mid-append must not lose the record: the
        partial line stays unconsumed and parses once completed."""
        writer = ResultStore(tmp_path / "s")
        writer.put(_record("a"))
        reader = ResultStore(tmp_path / "s")
        reader.load()
        line = json.dumps(_record("b")).encode("utf-8")
        _append_raw(reader, line[:10])          # mid-append snapshot
        assert reader.refresh() == []
        _append_raw(reader, line[10:] + b"\n")  # writer finishes
        fresh = reader.refresh()
        assert [record["job_hash"] for record in fresh] == ["b"]
        # the reader never marked the store damaged
        assert not reader._truncated_tail

    def test_complete_line_without_trailing_newline_is_consumed(self, tmp_path):
        writer = ResultStore(tmp_path / "s")
        writer.put(_record("a"))
        reader = ResultStore(tmp_path / "s")
        reader.load()
        _append_raw(reader, json.dumps(_record("b")).encode("utf-8"))
        fresh = reader.refresh()
        assert [record["job_hash"] for record in fresh] == ["b"]
        assert reader.refresh() == []

    def test_shrunken_file_triggers_full_reload(self, tmp_path):
        writer = ResultStore(tmp_path / "s")
        writer.put(_record("a"))
        writer.put(_record("b"))
        reader = ResultStore(tmp_path / "s")
        reader.load()
        writer.path.write_text(
            json.dumps(_record("z")) + "\n")  # store rewritten from scratch
        fresh = reader.refresh()
        assert [record["job_hash"] for record in fresh] == ["z"]
        assert reader.hashes() == ["z"]

    def test_corrupt_interior_line_warns_and_skips(self, tmp_path):
        writer = ResultStore(tmp_path / "s")
        writer.put(_record("a"))
        reader = ResultStore(tmp_path / "s")
        reader.load()
        _append_raw(reader, b"{this is not json}\n")
        _append_raw(reader, json.dumps(_record("b")).encode() + b"\n")
        with pytest.warns(UserWarning, match="corrupt"):
            fresh = reader.refresh()
        assert [record["job_hash"] for record in fresh] == ["b"]


# ----------------------------------------------------------------------
# StatusTracker
# ----------------------------------------------------------------------
class TestStatusTracker:
    def test_payload_matches_experiment_status_before_and_after(self, tmp_path):
        store = str(tmp_path / "results")
        tracker = StatusTracker(SMALL_SPEC, store=store)
        assert tracker.refresh() == experiment_status(SMALL_SPEC, store=store)
        assert not tracker.is_complete
        run_experiment(SMALL_SPEC, store=store)
        after = tracker.refresh()
        assert after == experiment_status(SMALL_SPEC, store=store)
        assert (after["done"], after["pending"]) == (2, 0)
        assert tracker.is_complete

    def test_experiment_status_routes_through_the_tracker(self):
        # the satellite fix: one classification pass, shared implementation
        import repro.exp.orchestrator as orchestrator
        import inspect

        source = inspect.getsource(orchestrator.experiment_status)
        assert "StatusTracker" in source

    def test_incremental_refresh_sees_new_records_cheaply(self, tmp_path):
        """Jobs landing between polls flip pending->done without a full
        reload (the tracker's store only tail-reads)."""
        store_root = tmp_path / "results"
        tracker = StatusTracker(SMALL_SPEC, store=str(store_root))
        assert tracker.refresh()["pending"] == 2
        run_experiment(SMALL_SPEC, store=str(store_root))
        status = tracker.refresh()
        assert (status["done"], status["pending"]) == (2, 0)
        assert status["scenarios"]["paper-ttl-tight"]["done"] == 2

    def test_storeless_tracker_reports_all_pending(self):
        tracker = StatusTracker(SMALL_SPEC, store=None)
        status = tracker.refresh()
        assert (status["done"], status["pending"]) == (0, 2)
        assert status["store"] is None
        assert not tracker.is_complete

    def test_failure_records_classify_and_report(self, tmp_path):
        store = ResultStore(tmp_path / "results")
        run_experiment(SMALL_SPEC, store=store)
        tracker = StatusTracker(SMALL_SPEC, store=ResultStore(store.root))
        assert tracker.refresh()["failed"] == 0
        # quarantine one job after the fact: last write wins per hash
        victim = tracker.plan.jobs[0]
        store.put({
            "schema": 1, "job_hash": victim.job_hash, "status": "failed",
            "scenario": victim.scenario_name, "protocol": victim.protocol,
            "seed": victim.seed, "run_index": victim.run_index,
            "error": "exploded", "error_kind": "RuntimeError",
            "attempts": 2, "elapsed_s": 0.1, "detail": None})
        status = tracker.refresh()
        assert (status["done"], status["failed"]) == (1, 1)
        (row,) = status["failures"]
        assert row["protocol"] == victim.protocol
        assert row["error_kind"] == "RuntimeError"
        assert status == experiment_status(SMALL_SPEC,
                                           store=ResultStore(store.root))
        # failed jobs are settled: watch terminates on them
        assert tracker.is_complete

    def test_watch_during_a_live_run(self, tmp_path):
        """Poll a tracker while another thread executes the experiment —
        the feed must settle to complete without a full store rescan."""
        store_root = str(tmp_path / "results")
        tracker = StatusTracker(SMALL_SPEC, store=store_root)
        assert tracker.refresh()["pending"] == 2
        runner = threading.Thread(
            target=run_experiment, args=(SMALL_SPEC,),
            kwargs={"store": store_root})
        runner.start()
        try:
            deadline = time.monotonic() + 60.0
            while not tracker.is_complete:
                assert time.monotonic() < deadline, "watch never settled"
                tracker.refresh()
                time.sleep(0.02)
        finally:
            runner.join(timeout=60.0)
        status = tracker.refresh()
        assert (status["done"], status["failed"]) == (2, 0)


# ----------------------------------------------------------------------
# LiveLeaderboard
# ----------------------------------------------------------------------
class TestLiveLeaderboard:
    def test_converges_to_the_tournament_leaderboard(self):
        """Observing every finished cell through the progress callback
        must end at the same standings the batch leaderboard computes."""
        board = LiveLeaderboard()
        snapshots = []

        def progress(event, job, value):
            if event in ("done", "reused"):
                board.observe(job.protocol, value)
                snapshots.append([row["protocol"] for row in board.rows()])

        result = run_tournament(
            protocols=("Epidemic", "Direct Delivery"),
            scenarios=("paper-ttl-tight",), seeds=(7,),
            progress=progress)
        assert board.num_observed == 2
        assert snapshots, "progress must fire per settled job"
        assert len(snapshots[0]) == 1  # standings existed mid-run

        final = {row["protocol"]: row for row in board.rows()}
        batch = {row["protocol"]: row for row in result.leaderboard_rows()}
        assert final.keys() == batch.keys()
        for protocol, row in batch.items():
            live = final[protocol]
            for column in ("rank", "messages", "delivered", "success_rate",
                           "median_delay_s", "p90_delay_s",
                           "copies/delivery", "lost", "retx", "crashes"):
                assert live[column] == row[column], (protocol, column)

    def test_preseeded_protocols_rank_with_zero_observations(self):
        board = LiveLeaderboard(protocols=("A", "B"))
        rows = board.rows()
        assert [row["protocol"] for row in rows] == ["A", "B"]
        assert all(row["messages"] == 0 for row in rows)
        assert "A" in board.table()

    def test_ranking_orders_by_success_then_delay(self):
        board = LiveLeaderboard()

        class _Result:
            def __init__(self, delivered, total, delay):
                from repro.forwarding.simulator import DeliveryOutcome
                from repro.forwarding.messages import Message

                self.copies_sent = total
                self.outcomes = []
                for index in range(total):
                    message = Message(id=index, source=0, destination=1,
                                      creation_time=0.0)
                    hit = index < delivered
                    self.outcomes.append(DeliveryOutcome(
                        message=message, delivered=hit,
                        delivery_time=delay if hit else None,
                        hop_count=1 if hit else 0))

        board.observe("strong", _Result(delivered=9, total=10, delay=50.0))
        board.observe("weak", _Result(delivered=2, total=10, delay=5.0))
        board.observe("slow", _Result(delivered=9, total=10, delay=400.0))
        ranked = [row["protocol"] for row in board.rows()]
        assert ranked == ["strong", "slow", "weak"]
        assert [row["rank"] for row in board.rows()] == [1, 2, 3]


# ----------------------------------------------------------------------
# interrupted observed runs
# ----------------------------------------------------------------------
class TestKillAndResume:
    def test_interrupt_preserves_telemetry_artifacts(self, tmp_path,
                                                     monkeypatch):
        """Kill mid-run: the finished job's trace survives; resume
        executes the tail, keeps the old trace, and writes metrics."""
        import repro.exp.orchestrator as orchestrator

        store = ResultStore(tmp_path / "results")
        obs = ObsConfig(trace_dir=str(tmp_path / "traces"),
                        metrics_path=str(tmp_path / "metrics.json"))
        real_run = orchestrator._run_exp_job
        calls = {"n": 0}

        def explode_on_second(payload):
            calls["n"] += 1
            if calls["n"] == 2:
                raise KeyboardInterrupt
            return real_run(payload)

        monkeypatch.setattr(orchestrator, "_run_exp_job", explode_on_second)
        with pytest.raises(KeyboardInterrupt):
            run_experiment(SMALL_SPEC, store=store, obs=obs)
        trace_dir = tmp_path / "traces"
        survivors = sorted(trace_dir.glob("trace-*.jsonl"))
        assert len(survivors) == 1
        first_trace = survivors[0].read_bytes()

        monkeypatch.setattr(orchestrator, "_run_exp_job", real_run)
        resumed = run_experiment(SMALL_SPEC, store=ResultStore(store.root),
                                 obs=obs)
        assert resumed.num_executed == 1
        assert resumed.num_reused == 1
        # both traces on disk now; the survivor is untouched
        assert len(sorted(trace_dir.glob("trace-*.jsonl"))) == 2
        assert survivors[0].read_bytes() == first_trace
        assert read_trace(survivors[0])
        metrics = json.loads((tmp_path / "metrics.json").read_text())
        assert metrics["executed"] == 1
        assert metrics["reused"] == 1
        assert len(metrics["engine_runs"]) == 1


# ----------------------------------------------------------------------
# the watch CLI
# ----------------------------------------------------------------------
class TestWatchCli:
    def _spec_file(self, tmp_path):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps({
            "name": "watch-cli", "scenarios": ["paper-ttl-tight"],
            "protocols": ["Epidemic", "Direct Delivery"], "seeds": [7]}))
        return str(spec_path)

    def test_watch_bounded_polls_on_a_pending_grid(self, tmp_path, capsys):
        spec_path = self._spec_file(tmp_path)
        store = str(tmp_path / "results")
        assert main(["exp", "watch", spec_path, "--store", store,
                     "--interval", "0.01", "--max-polls", "2"]) == 0
        out = capsys.readouterr().out
        assert "0/2 done, 0 failed, 2 pending" in out
        assert "stopping after 2 poll(s)" in out

    def test_watch_exits_when_the_grid_settles(self, tmp_path, capsys):
        spec_path = self._spec_file(tmp_path)
        store = str(tmp_path / "results")
        assert main(["exp", "run", spec_path, "--store", store]) == 0
        capsys.readouterr()
        assert main(["exp", "watch", spec_path, "--store", store,
                     "--interval", "0.01"]) == 0
        out = capsys.readouterr().out
        assert "2/2 done, 0 failed, 0 pending" in out
        assert "experiment complete" in out

    def test_status_live_aliases_watch(self, tmp_path, capsys):
        spec_path = self._spec_file(tmp_path)
        store = str(tmp_path / "results")
        assert main(["exp", "run", spec_path, "--store", store]) == 0
        capsys.readouterr()
        assert main(["exp", "status", spec_path, "--store", store,
                     "--live", "--interval", "0.01"]) == 0
        assert "experiment complete" in capsys.readouterr().out

    def test_interval_must_be_positive(self, tmp_path):
        spec_path = self._spec_file(tmp_path)
        with pytest.raises(SystemExit, match="interval"):
            main(["exp", "watch", spec_path, "--interval", "0"])


def test_public_reexports():
    """The feed types are part of the repro.obs (and repro) surface."""
    import repro

    assert FeedStatusTracker is StatusTracker
    assert repro.obs.LiveLeaderboard is LiveLeaderboard
