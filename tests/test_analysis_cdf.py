"""Unit tests for the statistical helpers (repro.analysis.cdf)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis import cdf_at, empirical_cdf, exponential_growth_rate, quantile


class TestEmpiricalCdf:
    def test_sorted_and_normalised(self):
        x, cdf = empirical_cdf([3.0, 1.0, 2.0])
        assert list(x) == [1.0, 2.0, 3.0]
        assert list(cdf) == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_monotone(self):
        rng = np.random.default_rng(0)
        x, cdf = empirical_cdf(rng.normal(size=100))
        assert np.all(np.diff(x) >= 0)
        assert np.all(np.diff(cdf) > 0)

    def test_empty(self):
        x, cdf = empirical_cdf([])
        assert x.size == 0 and cdf.size == 0

    def test_duplicates_allowed(self):
        x, cdf = empirical_cdf([5.0, 5.0])
        assert list(x) == [5.0, 5.0]
        assert cdf[-1] == 1.0


class TestCdfAt:
    def test_fraction_below_threshold(self):
        assert cdf_at([1, 2, 3, 4], 2.5) == pytest.approx(0.5)
        assert cdf_at([1, 2, 3, 4], 4.0) == pytest.approx(1.0)
        assert cdf_at([1, 2, 3, 4], 0.0) == 0.0

    def test_empty_is_nan(self):
        assert math.isnan(cdf_at([], 1.0))


class TestQuantile:
    def test_median(self):
        assert quantile([1.0, 2.0, 3.0], 0.5) == pytest.approx(2.0)

    def test_bounds_validation(self):
        with pytest.raises(ValueError):
            quantile([1.0], 1.5)

    def test_empty_is_nan(self):
        assert math.isnan(quantile([], 0.5))


class TestExponentialGrowthRate:
    def test_recovers_known_rate(self):
        times = np.linspace(0, 100, 20)
        counts = 3.0 * np.exp(0.05 * times)
        rate = exponential_growth_rate(times, counts)
        assert rate == pytest.approx(0.05, rel=1e-6)

    def test_ignores_zero_counts(self):
        times = [0.0, 10.0, 20.0, 30.0]
        counts = [0.0, 1.0, math.e ** 1, math.e ** 2]
        rate = exponential_growth_rate(times, counts)
        assert rate == pytest.approx(0.1, rel=1e-6)

    def test_none_for_insufficient_points(self):
        assert exponential_growth_rate([1.0], [2.0]) is None
        assert exponential_growth_rate([1.0, 2.0], [0.0, 0.0]) is None

    def test_none_for_constant_times(self):
        assert exponential_growth_rate([5.0, 5.0], [1.0, 2.0]) is None

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            exponential_growth_rate([1.0, 2.0], [1.0])

    def test_negative_rate_for_decay(self):
        times = np.linspace(0, 10, 10)
        counts = np.exp(-0.3 * times)
        assert exponential_growth_rate(times, counts) == pytest.approx(-0.3, rel=1e-6)
