"""Unit tests for trace statistics (repro.contacts.stats)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.contacts import (
    Contact,
    ContactTrace,
    contact_count_distribution,
    contact_time_series,
    describe,
    inter_contact_ccdf,
    inter_contact_time_samples,
    node_contact_rates,
    rate_uniformity_statistic,
    stationarity_score,
)


class TestContactTimeSeries:
    def test_counts_sum_to_total_contacts(self, star_trace):
        _, counts = contact_time_series(star_trace, bin_seconds=60.0)
        assert counts.sum() == len(star_trace)

    def test_bin_edges_cover_duration(self, star_trace):
        bins, counts = contact_time_series(star_trace, bin_seconds=60.0)
        assert bins[0] == 0.0
        assert len(bins) == len(counts)
        assert bins[-1] < star_trace.duration

    def test_single_bin_for_coarse_binning(self, tiny_trace):
        bins, counts = contact_time_series(tiny_trace, bin_seconds=1000.0)
        assert len(bins) == 1
        assert counts[0] == len(tiny_trace)

    def test_rejects_non_positive_bin(self, tiny_trace):
        with pytest.raises(ValueError):
            contact_time_series(tiny_trace, bin_seconds=0.0)

    def test_empty_trace(self):
        trace = ContactTrace([], nodes=range(2), duration=120.0)
        bins, counts = contact_time_series(trace, bin_seconds=60.0)
        assert counts.sum() == 0
        assert len(bins) == 2


class TestContactCountDistribution:
    def test_cdf_is_monotone_and_ends_at_one(self, star_trace):
        counts, cdf = contact_count_distribution(star_trace)
        assert np.all(np.diff(cdf) >= 0)
        assert cdf[-1] == pytest.approx(1.0)

    def test_counts_sorted(self, star_trace):
        counts, _ = contact_count_distribution(star_trace)
        assert np.all(np.diff(counts) >= 0)

    def test_hub_has_maximum_count(self, star_trace):
        counts, _ = contact_count_distribution(star_trace)
        assert counts[-1] == star_trace.contact_counts()[0]

    def test_empty_trace(self):
        trace = ContactTrace([], duration=10.0)
        counts, cdf = contact_count_distribution(trace)
        assert counts.size == 0 and cdf.size == 0


class TestRates:
    def test_node_contact_rates_matches_trace_method(self, tiny_trace):
        assert node_contact_rates(tiny_trace) == tiny_trace.contact_rates()

    def test_rate_uniformity_statistic_bounded(self, star_trace, tiny_trace):
        for trace in (star_trace, tiny_trace):
            ks = rate_uniformity_statistic(trace)
            assert 0.0 <= ks <= 1.0

    def test_star_trace_is_far_from_uniform(self, star_trace):
        # A hub-and-spoke topology is as far from the paper's uniform
        # contact-count distribution as it gets: one node with 30 contacts,
        # five with 6.
        assert rate_uniformity_statistic(star_trace) > 0.5

    def test_ladder_counts_are_close_to_uniform(self):
        # A threshold graph (i meets j iff i + j >= 10) gives contact counts
        # that form a near-perfect ladder 1..8, i.e. approximately uniform on
        # (0, max) — the Figure 7 shape.
        contacts = []
        t = 0.0
        for i in range(1, 10):
            for j in range(i + 1, 10):
                if i + j >= 10:
                    contacts.append(Contact(t, t + 1.0, i, j))
                    t += 2.0
        trace = ContactTrace(contacts, duration=t + 10.0)
        assert rate_uniformity_statistic(trace) < 0.2

    def test_empty_trace_statistic_is_zero(self):
        assert rate_uniformity_statistic(ContactTrace([], duration=5.0)) == 0.0


class TestInterContactTimes:
    def test_samples_pooled_across_pairs(self, star_trace):
        samples = inter_contact_time_samples(star_trace)
        # 5 spokes x 5 gaps each
        assert len(samples) == 25
        assert all(s == pytest.approx(80.0) for s in samples)

    def test_ccdf_monotone_decreasing(self, star_trace):
        grid, ccdf = inter_contact_ccdf(star_trace, num_points=50)
        assert np.all(np.diff(ccdf) <= 1e-12)

    def test_ccdf_empty_for_no_repeat_pairs(self, tiny_trace):
        grid, ccdf = inter_contact_ccdf(tiny_trace)
        assert grid.size == 0


class TestStationarity:
    def test_constant_activity_has_low_score(self):
        contacts = [Contact(float(t), float(t) + 1.0, 0, 1) for t in range(0, 600, 10)]
        trace = ContactTrace(contacts, duration=600.0)
        assert stationarity_score(trace, bin_seconds=60.0) < 0.2

    def test_bursty_activity_has_high_score(self):
        contacts = [Contact(float(t), float(t) + 1.0, 0, 1) for t in range(0, 60, 2)]
        trace = ContactTrace(contacts, duration=600.0)
        assert stationarity_score(trace, bin_seconds=60.0) > 1.0

    def test_empty_trace_scores_zero(self):
        assert stationarity_score(ContactTrace([], duration=100.0)) == 0.0


class TestDescribe:
    def test_headline_fields(self, star_trace):
        stats = describe(star_trace)
        assert stats.num_nodes == 6
        assert stats.num_contacts == 30
        assert stats.duration == 700.0
        assert stats.max_contacts_per_node == 30
        assert stats.min_contacts_per_node == 6
        assert stats.mean_contact_duration == pytest.approx(20.0)

    def test_as_dict_round_trips_fields(self, star_trace):
        stats = describe(star_trace)
        data = stats.as_dict()
        assert data["num_nodes"] == stats.num_nodes
        assert data["stationarity"] == stats.stationarity

    def test_empty_trace_describe(self):
        stats = describe(ContactTrace([], nodes=range(2), duration=60.0))
        assert stats.num_contacts == 0
        assert stats.mean_contacts_per_node == 0.0
        assert stats.mean_inter_contact_time == 0.0
