"""Tests for the experiment daemon (:mod:`repro.svc.daemon`):

  * whole-grid execution with content-hash dedupe — a re-submitted spec
    executes 0 jobs;
  * priority-then-FIFO scheduling;
  * cancellation of queued submissions;
  * journal replay: finished grids recover as done/reused, unfinished
    ones are re-queued and resume exactly the missing jobs;
  * kill -9 of a live ``svc serve`` process mid-grid, then restart:
    the jobs completed before the kill are never executed again.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.exp.spec import ExperimentSpec
from repro.svc.daemon import SUBMISSIONS_FILENAME, ExperimentDaemon
from repro.svc.store import ShardedResultStore, create_store

SPEC = ExperimentSpec(
    name="svc-grid", scenarios=("paper-ttl-tight",),
    protocols=("Epidemic", "Direct Delivery"), seeds=(7, 8), num_runs=1)


async def settle(daemon, submission_id, timeout=60.0):
    """Wait until the submission leaves queued/running; returns its state."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        state = daemon.submissions[submission_id].state
        if state not in ("queued", "running"):
            return state
        await asyncio.sleep(0.02)
    raise AssertionError(f"{submission_id} still "
                         f"{daemon.submissions[submission_id].state} "
                         f"after {timeout:g}s")


class TestDedupe:
    def test_grid_executes_then_resubmit_executes_zero(self, tmp_path):
        async def scenario():
            daemon = ExperimentDaemon(tmp_path / "store", chunk_size=2)
            await daemon.start()
            first = daemon.submit(SPEC)
            assert first["already_stored"] == 0
            assert await settle(daemon, first["id"]) == "done"
            submission = daemon.submissions[first["id"]]
            assert submission.executed == 4 and submission.reused == 0

            again = daemon.submit(SPEC)
            assert again["already_stored"] == 4
            assert await settle(daemon, again["id"]) == "done"
            resubmitted = daemon.submissions[again["id"]]
            assert resubmitted.executed == 0
            assert resubmitted.reused == 4
            await daemon.drain()
            return daemon

        daemon = asyncio.run(scenario())
        assert daemon.jobs_executed == 4 and daemon.jobs_reused == 4
        assert len(ShardedResultStore(tmp_path / "store")) == 4

    def test_overlapping_submissions_share_the_store(self, tmp_path):
        grown = SPEC.with_overrides(seeds=(7, 8, 9))

        async def scenario():
            daemon = ExperimentDaemon(tmp_path / "store")
            await daemon.start()
            base = daemon.submit(SPEC)
            extended = daemon.submit(grown)
            await settle(daemon, base["id"])
            await settle(daemon, extended["id"])
            await daemon.drain()
            return daemon

        daemon = asyncio.run(scenario())
        # the 6-job superset reuses the 4 overlapping cells
        assert daemon.jobs_executed == 6
        assert daemon.submissions["sub-000002"].reused == 4


class TestScheduling:
    def test_higher_priority_runs_first(self, tmp_path):
        low_spec = SPEC.with_overrides(name="low", seeds=(1,),
                                       protocols=("Direct Delivery",))
        high_spec = SPEC.with_overrides(name="high", seeds=(2,),
                                        protocols=("Direct Delivery",))

        async def scenario():
            daemon = ExperimentDaemon(tmp_path / "store")
            low = daemon.submit(low_spec, priority=0)
            high = daemon.submit(high_spec, priority=5)
            await daemon.start(recover=False)
            await settle(daemon, low["id"])
            await settle(daemon, high["id"])
            await daemon.drain()
            return (daemon.submissions[high["id"]].finished_at,
                    daemon.submissions[low["id"]].finished_at)

        high_done, low_done = asyncio.run(scenario())
        assert high_done <= low_done

    def test_cancel_queued_submission_never_runs(self, tmp_path):
        async def scenario():
            daemon = ExperimentDaemon(tmp_path / "store")
            queued = daemon.submit(SPEC)
            info = daemon.cancel(queued["id"])
            assert info["state"] == "cancelled"
            await daemon.start(recover=False)
            await asyncio.sleep(0.05)
            await daemon.drain()
            return daemon

        daemon = asyncio.run(scenario())
        assert daemon.jobs_executed == 0
        assert len(daemon.store) == 0

    def test_cancel_unknown_submission_raises(self, tmp_path):
        daemon = ExperimentDaemon(tmp_path / "store")
        with pytest.raises(KeyError, match="no such submission"):
            daemon.cancel("sub-999999")
        with pytest.raises(KeyError, match="no such submission"):
            daemon.status("sub-999999")

    def test_invalid_spec_rejected_at_submit_time(self, tmp_path):
        daemon = ExperimentDaemon(tmp_path / "store")
        with pytest.raises((KeyError, TypeError, ValueError)):
            daemon.submit({"name": "broken"})
        assert daemon.submissions == {}
        # nothing journaled for a rejected spec
        assert not (daemon.root / SUBMISSIONS_FILENAME).exists()

    def test_status_reports_tracker_payload(self, tmp_path):
        async def scenario():
            daemon = ExperimentDaemon(tmp_path / "store")
            await daemon.start()
            info = daemon.submit(SPEC)
            await settle(daemon, info["id"])
            payload = daemon.status(info["id"])
            await daemon.drain()
            return payload

        payload = asyncio.run(scenario())
        assert payload["done"] == payload["total_jobs"] == 4
        assert payload["submission"]["state"] == "done"
        assert "paper-ttl-tight" in payload["scenarios"]


class TestJournalRecovery:
    def test_finished_grid_recovers_as_done(self, tmp_path):
        async def first_life():
            daemon = ExperimentDaemon(tmp_path / "store")
            await daemon.start()
            info = daemon.submit(SPEC)
            await settle(daemon, info["id"])
            await daemon.drain()

        asyncio.run(first_life())

        async def second_life():
            daemon = ExperimentDaemon(tmp_path / "store")
            report = await daemon.start(recover=True)
            await daemon.drain()
            return daemon, report

        daemon, report = asyncio.run(second_life())
        assert report == {"records": 4, "requeued": 0}
        recovered = daemon.submissions["sub-000001"]
        assert recovered.state == "done" and recovered.recovered
        assert recovered.reused == 4
        assert daemon.jobs_executed == 0

    def test_unfinished_grid_is_requeued_and_resumed(self, tmp_path):
        # journal a submission without ever starting the scheduler: the
        # shape a crash leaves behind
        crashed = ExperimentDaemon(tmp_path / "store")
        crashed.submit(SPEC)

        async def second_life():
            daemon = ExperimentDaemon(tmp_path / "store")
            report = await daemon.start(recover=True)
            assert report["requeued"] == 1
            assert await settle(daemon, "sub-000001") == "done"
            # new ids allocate past the journaled ones
            duplicate = daemon.submit(SPEC)
            assert duplicate["id"] == "sub-000002"
            await settle(daemon, duplicate["id"])
            await daemon.drain()
            return daemon

        daemon = asyncio.run(second_life())
        assert daemon.jobs_executed == 4
        assert len(ShardedResultStore(tmp_path / "store")) == 4

    def test_torn_journal_tail_is_skipped(self, tmp_path):
        daemon = ExperimentDaemon(tmp_path / "store")
        daemon.submit(SPEC)
        journal = daemon.root / SUBMISSIONS_FILENAME
        with open(journal, "ab") as handle:
            handle.write(b'{"id": "sub-000002", "spec": {"na')

        async def second_life():
            fresh = ExperimentDaemon(tmp_path / "store")
            report = await fresh.start(recover=True)
            await fresh.drain()
            return fresh, report

        fresh, report = asyncio.run(second_life())
        assert report["requeued"] == 1
        assert list(fresh.submissions) == ["sub-000001"]


class TestKillNineRecovery:
    """SIGKILL a live ``svc serve`` mid-grid; restart must resume exactly
    the missing jobs — completed ones are reused, never re-executed."""

    # 3 protocols x 100 seeds: enough wall-clock (~1.5s serial) that the
    # poll loop reliably lands the kill strictly mid-grid
    BIG = {"name": "kill9", "scenarios": ["paper-ttl-tight"],
           "protocols": ["Epidemic", "Direct Delivery",
                         "Binary Spray-and-Wait"],
           "seeds": list(range(100)), "num_runs": 1}

    def _serve(self, root, spec_path):
        src = str(Path(__file__).resolve().parents[1] / "src")
        env = dict(os.environ, PYTHONPATH=src)
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "svc", "serve",
             "--store", str(root), "--port", "0", "--chunk-size", "4"],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT)
        try:
            deadline = time.monotonic() + 60
            endpoint = Path(root) / "svc.json"
            while not endpoint.exists():
                assert process.poll() is None, \
                    process.stdout.read().decode()
                assert time.monotonic() < deadline, "serve never bound"
                time.sleep(0.02)
            url = json.loads(endpoint.read_text())["url"]
            submit = subprocess.run(
                [sys.executable, "-m", "repro", "svc", "submit",
                 str(spec_path), "--url", url], env=env,
                capture_output=True, text=True, timeout=60)
            assert submit.returncode == 0, submit.stderr
        except BaseException:
            process.kill()
            process.wait()
            raise
        return process

    def test_sigkill_mid_grid_then_resume_reuses_completed_jobs(
            self, tmp_path):
        root = tmp_path / "store"
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(self.BIG))
        total = 300

        process = self._serve(root, spec_path)
        try:
            deadline = time.monotonic() + 120
            while True:
                done = len(ShardedResultStore(root))
                if done >= 5:
                    break
                assert time.monotonic() < deadline, "no records appeared"
                time.sleep(0.005)
        finally:
            process.send_signal(signal.SIGKILL)
            process.wait(timeout=30)

        survivors = len(ShardedResultStore(root))
        assert 0 < survivors, "kill landed before any record"
        assert survivors < total, "grid finished before the kill landed"

        async def second_life():
            daemon = ExperimentDaemon(root, chunk_size=32)
            report = await daemon.start(recover=True)
            assert report["requeued"] == 1
            assert await settle(daemon, "sub-000001", timeout=300) == "done"
            await daemon.drain()
            return daemon

        daemon = asyncio.run(second_life())
        resumed = daemon.submissions["sub-000001"]
        # resume executes only the missing jobs: everything completed
        # before the kill is answered by the store
        assert resumed.reused >= survivors
        assert resumed.executed == total - resumed.reused
        assert resumed.executed + resumed.reused == total
        assert len(ShardedResultStore(root)) == total
