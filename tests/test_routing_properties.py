"""Property-based tests (hypothesis) for the stateful protocol invariants.

Two invariants from the ISSUE:

* binary (and source) spray-and-wait never exceed their L-copy budget,
  whatever the contact sequence does;
* PRoPHET delivery predictabilities stay in ``[0, 1]`` under arbitrary
  contact sequences, including adversarial timing (simultaneous and
  out-of-order-looking event times).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.contacts import Contact, ContactTrace
from repro.forwarding import ForwardingSimulator, Message, OnlineContactHistory
from repro.routing import (
    BinarySprayAndWaitProtocol,
    ProphetProtocol,
    SourceSprayAndWaitProtocol,
)

node_ids = st.integers(min_value=0, max_value=9)


@st.composite
def contact_strategy(draw, max_time: float = 500.0):
    a = draw(node_ids)
    b = draw(node_ids)
    if a == b:
        b = (a + 1) % 10
    start = draw(st.floats(min_value=0.0, max_value=max_time, allow_nan=False))
    length = draw(st.floats(min_value=0.0, max_value=100.0, allow_nan=False))
    return Contact(start, start + length, a, b)


@st.composite
def trace_strategy(draw, min_contacts: int = 1, max_contacts: int = 40):
    contacts = draw(st.lists(contact_strategy(), min_size=min_contacts,
                             max_size=max_contacts))
    max_end = max(c.end for c in contacts)
    return ContactTrace(contacts, nodes=range(10), duration=max_end + 50.0)


@st.composite
def messages_strategy(draw, max_messages: int = 6, max_time: float = 400.0):
    count = draw(st.integers(min_value=1, max_value=max_messages))
    messages = []
    for index in range(count):
        source = draw(node_ids)
        destination = draw(node_ids)
        if source == destination:
            destination = (source + 1) % 10
        creation = draw(st.floats(min_value=0.0, max_value=max_time,
                                  allow_nan=False))
        messages.append(Message(id=index, source=source,
                                destination=destination,
                                creation_time=creation))
    return messages


class TestSprayBudgetInvariant:
    @settings(max_examples=60, deadline=None)
    @given(trace=trace_strategy(), messages=messages_strategy(),
           budget=st.integers(min_value=1, max_value=16))
    def test_binary_spray_never_exceeds_budget(self, trace, messages, budget):
        protocol = BinarySprayAndWaitProtocol(copies=budget)
        result = ForwardingSimulator(trace, protocol).run(messages)
        for message in messages:
            holders = protocol._copies.get(message.id, {})
            # the logical budget is conserved, every holder owns >= 1 copy,
            # so at most L nodes ever carry (delivery rides on top for free)
            assert sum(holders.values()) == budget
            assert all(count >= 1 for count in holders.values())
            assert len(holders) <= budget
        # relaying transfers (delivery excluded) are bounded by the spray
        # fan-out: at most L - 1 sprays per message
        delivered = sum(1 for o in result.outcomes if o.delivered)
        assert result.copies_sent <= len(messages) * (budget - 1) + delivered

    @settings(max_examples=40, deadline=None)
    @given(trace=trace_strategy(), messages=messages_strategy(),
           budget=st.integers(min_value=1, max_value=16))
    def test_source_spray_never_exceeds_budget(self, trace, messages, budget):
        protocol = SourceSprayAndWaitProtocol(copies=budget)
        ForwardingSimulator(trace, protocol).run(messages)
        for message in messages:
            holders = protocol._copies.get(message.id, {})
            assert sum(holders.values()) == budget
            assert len(holders) <= budget


class TestProphetBounds:
    @settings(max_examples=80, deadline=None)
    @given(events=st.lists(
        st.tuples(node_ids, node_ids,
                  st.floats(min_value=0.0, max_value=1e5, allow_nan=False)),
        min_size=1, max_size=60))
    def test_predictabilities_stay_in_unit_interval(self, events):
        """Arbitrary (including non-monotone) contact sequences keep every
        P(a, b) in [0, 1]."""
        protocol = ProphetProtocol()
        history = OnlineContactHistory()
        for a, b, now in events:
            if a == b:
                b = (a + 1) % 10
            protocol.on_contact_start(a, b, now, history)
            for node, table in protocol._tables.items():
                for other, value in table.items():
                    assert 0.0 <= value <= 1.0, (node, other, value)

    @settings(max_examples=40, deadline=None)
    @given(trace=trace_strategy(), messages=messages_strategy())
    def test_bounds_hold_through_full_simulation(self, trace, messages):
        protocol = ProphetProtocol()
        ForwardingSimulator(trace, protocol).run(messages)
        for table in protocol._tables.values():
            for value in table.values():
                assert 0.0 <= value <= 1.0
