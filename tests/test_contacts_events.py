"""Unit tests for the contact-trace data model (repro.contacts.events)."""

from __future__ import annotations

import pytest

from repro.contacts import Contact, ContactTrace


class TestContact:
    def test_canonical_pair_order(self):
        contact = Contact(0.0, 10.0, 5, 2)
        assert contact.a == 2
        assert contact.b == 5
        assert contact.pair == (2, 5)

    def test_already_ordered_pair_is_unchanged(self):
        contact = Contact(0.0, 10.0, 1, 9)
        assert (contact.a, contact.b) == (1, 9)

    def test_duration(self):
        assert Contact(5.0, 25.0, 0, 1).duration == 20.0

    def test_zero_duration_contact_allowed(self):
        contact = Contact(5.0, 5.0, 0, 1)
        assert contact.duration == 0.0

    def test_rejects_self_contact(self):
        with pytest.raises(ValueError):
            Contact(0.0, 10.0, 3, 3)

    def test_rejects_end_before_start(self):
        with pytest.raises(ValueError):
            Contact(10.0, 5.0, 0, 1)

    def test_rejects_negative_start(self):
        with pytest.raises(ValueError):
            Contact(-1.0, 5.0, 0, 1)

    def test_involves(self):
        contact = Contact(0.0, 1.0, 2, 7)
        assert contact.involves(2)
        assert contact.involves(7)
        assert not contact.involves(3)

    def test_peer(self):
        contact = Contact(0.0, 1.0, 2, 7)
        assert contact.peer(2) == 7
        assert contact.peer(7) == 2

    def test_peer_rejects_non_member(self):
        with pytest.raises(ValueError):
            Contact(0.0, 1.0, 2, 7).peer(5)

    def test_overlaps_interior(self):
        contact = Contact(10.0, 20.0, 0, 1)
        assert contact.overlaps(15.0, 16.0)
        assert contact.overlaps(5.0, 11.0)
        assert contact.overlaps(19.0, 30.0)

    def test_overlaps_excludes_disjoint(self):
        contact = Contact(10.0, 20.0, 0, 1)
        assert not contact.overlaps(0.0, 10.0)
        assert not contact.overlaps(20.0, 30.0)

    def test_zero_duration_overlap_semantics(self):
        contact = Contact(10.0, 10.0, 0, 1)
        assert contact.overlaps(10.0, 11.0)
        assert not contact.overlaps(9.0, 10.0)

    def test_active_at(self):
        contact = Contact(10.0, 20.0, 0, 1)
        assert contact.active_at(10.0)
        assert contact.active_at(15.0)
        assert not contact.active_at(20.0)
        assert not contact.active_at(9.99)

    def test_zero_duration_active_only_at_start(self):
        contact = Contact(10.0, 10.0, 0, 1)
        assert contact.active_at(10.0)
        assert not contact.active_at(10.5)

    def test_shifted(self):
        contact = Contact(10.0, 20.0, 0, 1).shifted(5.0)
        assert (contact.start, contact.end) == (15.0, 25.0)

    def test_ordering_by_start_time(self):
        early = Contact(1.0, 2.0, 0, 1)
        late = Contact(3.0, 4.0, 0, 1)
        assert early < late

    def test_equality_and_hash(self):
        a = Contact(0.0, 1.0, 4, 2)
        b = Contact(0.0, 1.0, 2, 4)
        assert a == b
        assert hash(a) == hash(b)


class TestContactTrace:
    def test_len_and_iteration(self, tiny_trace):
        assert len(tiny_trace) == 5
        assert len(list(tiny_trace)) == 5

    def test_contacts_sorted_by_start(self):
        trace = ContactTrace([
            Contact(50.0, 60.0, 0, 1),
            Contact(10.0, 20.0, 1, 2),
            Contact(30.0, 40.0, 0, 2),
        ])
        starts = [c.start for c in trace]
        assert starts == sorted(starts)

    def test_nodes_inferred_from_contacts(self):
        trace = ContactTrace([Contact(0.0, 1.0, 3, 8)])
        assert trace.nodes == frozenset({3, 8})

    def test_explicit_nodes_include_silent_nodes(self):
        trace = ContactTrace([Contact(0.0, 1.0, 0, 1)], nodes=range(4))
        assert trace.nodes == frozenset({0, 1, 2, 3})
        assert trace.contact_counts()[3] == 0

    def test_rejects_contacts_outside_declared_nodes(self):
        with pytest.raises(ValueError):
            ContactTrace([Contact(0.0, 1.0, 0, 9)], nodes=range(3))

    def test_duration_inferred(self):
        trace = ContactTrace([Contact(0.0, 75.0, 0, 1)])
        assert trace.duration == 75.0

    def test_rejects_duration_shorter_than_contacts(self):
        with pytest.raises(ValueError):
            ContactTrace([Contact(0.0, 75.0, 0, 1)], duration=50.0)

    def test_contacts_of(self, tiny_trace):
        assert len(tiny_trace.contacts_of(0)) == 2
        assert len(tiny_trace.contacts_of(2)) == 2

    def test_contacts_between_is_order_insensitive(self, tiny_trace):
        assert tiny_trace.contacts_between(1, 0) == tiny_trace.contacts_between(0, 1)
        assert len(tiny_trace.contacts_between(0, 1)) == 1

    def test_contacts_in_window(self, tiny_trace):
        window = tiny_trace.contacts_in_window(25.0, 65.0)
        pairs = {c.pair for c in window}
        assert pairs == {(1, 2), (2, 3)}

    def test_contacts_starting_in(self, tiny_trace):
        assert len(tiny_trace.contacts_starting_in(0.0, 31.0)) == 2
        assert len(tiny_trace.contacts_starting_in(100.0, 200.0)) == 1

    def test_active_at(self, tiny_trace):
        active = tiny_trace.active_at(40.0)
        assert len(active) == 1
        assert active[0].pair == (1, 2)

    def test_contact_counts(self, tiny_trace):
        counts = tiny_trace.contact_counts()
        assert counts == {0: 2, 1: 2, 2: 2, 3: 2, 4: 2}

    def test_contact_rates_scale_with_duration(self, tiny_trace):
        rates = tiny_trace.contact_rates()
        assert rates[0] == pytest.approx(2 / 200.0)

    def test_pair_contact_counts(self, star_trace):
        counts = star_trace.pair_contact_counts()
        assert counts[(0, 1)] == 6
        assert (1, 2) not in counts

    def test_inter_contact_times(self, star_trace):
        gaps = star_trace.inter_contact_times()
        assert (0, 1) in gaps
        # contacts for the pair (0,1) are 80 seconds apart end-to-start.
        assert all(g == pytest.approx(80.0) for g in gaps[(0, 1)])

    def test_inter_contact_times_skips_single_contact_pairs(self, tiny_trace):
        assert tiny_trace.inter_contact_times() == {}

    def test_window_clips_and_rebases(self, tiny_trace):
        sub = tiny_trace.window(25.0, 85.0)
        assert sub.duration == 60.0
        assert len(sub) == 2
        assert sub[0].start == pytest.approx(5.0)  # 30 - 25

    def test_window_without_rebase_keeps_absolute_times(self, tiny_trace):
        sub = tiny_trace.window(25.0, 85.0, rebase=False)
        assert sub[0].start == pytest.approx(30.0)

    def test_window_keeps_node_set(self, tiny_trace):
        sub = tiny_trace.window(0.0, 10.0)
        assert sub.nodes == tiny_trace.nodes

    def test_window_rejects_bad_bounds(self, tiny_trace):
        with pytest.raises(ValueError):
            tiny_trace.window(50.0, 50.0)

    def test_restricted_to(self, tiny_trace):
        sub = tiny_trace.restricted_to([0, 1, 2])
        assert sub.nodes == frozenset({0, 1, 2})
        assert all(c.a in {0, 1, 2} and c.b in {0, 1, 2} for c in sub)

    def test_restricted_to_rejects_unknown_nodes(self, tiny_trace):
        with pytest.raises(ValueError):
            tiny_trace.restricted_to([0, 99])

    def test_merged_with(self, tiny_trace, dense_burst_trace):
        merged = tiny_trace.merged_with(dense_burst_trace)
        assert len(merged) == len(tiny_trace) + len(dense_burst_trace)
        assert merged.duration == max(tiny_trace.duration, dense_burst_trace.duration)

    def test_relabeled(self, dense_burst_trace):
        mapping = {0: 10, 1: 11, 2: 12, 3: 13}
        renamed = dense_burst_trace.relabeled(mapping)
        assert renamed.nodes == frozenset({10, 11, 12, 13})
        assert len(renamed) == len(dense_burst_trace)

    def test_relabeled_requires_complete_mapping(self, dense_burst_trace):
        with pytest.raises(ValueError):
            dense_burst_trace.relabeled({0: 10})

    def test_relabeled_requires_injective_mapping(self, dense_burst_trace):
        with pytest.raises(ValueError):
            dense_burst_trace.relabeled({0: 10, 1: 10, 2: 12, 3: 13})

    def test_equality(self, tiny_trace):
        clone = ContactTrace(list(tiny_trace.contacts), nodes=tiny_trace.nodes,
                             duration=tiny_trace.duration, name="tiny-clone")
        assert clone == tiny_trace  # name is not part of equality

    def test_summary_keys(self, tiny_trace):
        summary = tiny_trace.summary()
        assert summary["num_nodes"] == 5
        assert summary["num_contacts"] == 5
        assert summary["mean_contact_duration"] == pytest.approx(20.0)

    def test_empty_trace(self):
        trace = ContactTrace([], nodes=range(3), duration=100.0)
        assert len(trace) == 0
        assert trace.contact_counts() == {0: 0, 1: 0, 2: 0}
        assert trace.summary()["contacts_per_second"] == 0.0
