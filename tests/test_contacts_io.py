"""Unit tests for trace I/O (repro.contacts.io)."""

from __future__ import annotations

import io

import pytest

from repro.contacts import (
    Contact,
    ContactTrace,
    read_csv,
    read_imote,
    trace_from_records,
    write_csv,
    write_imote,
)


class TestTraceFromRecords:
    def test_builds_contacts(self):
        trace = trace_from_records([(0, 10, 1, 2), (5, 15, 2, 3)])
        assert len(trace) == 2
        assert trace[0].pair == (1, 2)

    def test_respects_nodes_and_duration(self):
        trace = trace_from_records([(0, 10, 1, 2)], nodes=range(5), duration=100.0)
        assert trace.num_nodes == 5
        assert trace.duration == 100.0

    def test_coerces_types(self):
        trace = trace_from_records([("0", "10", "1", "2")])
        assert trace[0].start == 0.0
        assert trace[0].a == 1


class TestCsvRoundTrip:
    def test_round_trip_preserves_contacts(self, tiny_trace, tmp_path):
        path = tmp_path / "trace.csv"
        write_csv(tiny_trace, path)
        loaded = read_csv(path)
        assert loaded == tiny_trace

    def test_round_trip_preserves_metadata(self, tiny_trace, tmp_path):
        path = tmp_path / "trace.csv"
        write_csv(tiny_trace, path)
        loaded = read_csv(path)
        assert loaded.name == "tiny"
        assert loaded.duration == tiny_trace.duration
        assert loaded.nodes == tiny_trace.nodes

    def test_round_trip_with_silent_nodes(self, tmp_path):
        trace = ContactTrace([Contact(0.0, 1.0, 0, 1)], nodes=range(4), duration=50.0)
        path = tmp_path / "trace.csv"
        write_csv(trace, path)
        loaded = read_csv(path)
        assert loaded.nodes == frozenset(range(4))

    def test_round_trip_via_file_objects(self, tiny_trace):
        buffer = io.StringIO()
        write_csv(tiny_trace, buffer)
        buffer.seek(0)
        loaded = read_csv(buffer)
        assert loaded == tiny_trace

    def test_empty_trace_round_trip(self, tmp_path):
        trace = ContactTrace([], nodes=range(3), duration=10.0, name="empty")
        path = tmp_path / "empty.csv"
        write_csv(trace, path)
        loaded = read_csv(path)
        assert len(loaded) == 0
        assert loaded.nodes == frozenset(range(3))

    def test_rejects_wrong_header(self):
        buffer = io.StringIO("x,y,z,w\n1,2,3,4\n")
        with pytest.raises(ValueError):
            read_csv(buffer)


class TestImoteFormat:
    def test_read_basic(self):
        text = "1 2 100.0 160.0\n2 3 200.0 260.0 5 1\n"
        trace = read_imote(io.StringIO(text))
        assert len(trace) == 2
        assert trace[0].pair == (1, 2)
        assert trace[1].duration == pytest.approx(60.0)

    def test_read_skips_comments_and_blank_lines(self):
        text = "# header comment\n\n1 2 0 10\n"
        trace = read_imote(io.StringIO(text))
        assert len(trace) == 1

    def test_read_skips_self_sightings(self):
        text = "1 1 0 10\n1 2 0 10\n"
        trace = read_imote(io.StringIO(text))
        assert len(trace) == 1

    def test_read_applies_time_origin(self):
        text = "1 2 1000.0 1060.0\n"
        trace = read_imote(io.StringIO(text), time_origin=1000.0)
        assert trace[0].start == 0.0

    def test_read_rejects_short_lines(self):
        with pytest.raises(ValueError):
            read_imote(io.StringIO("1 2 3\n"))

    def test_write_then_read_round_trip(self, tiny_trace, tmp_path):
        path = tmp_path / "trace.imote"
        write_imote(tiny_trace, path)
        loaded = read_imote(path, duration=tiny_trace.duration)
        assert len(loaded) == len(tiny_trace)
        assert {c.pair for c in loaded} == {c.pair for c in tiny_trace}

    def test_file_path_round_trip(self, tmp_path):
        path = tmp_path / "x.txt"
        with open(path, "w") as handle:
            handle.write("4 7 10 20\n")
        trace = read_imote(str(path))
        assert trace[0].pair == (4, 7)
