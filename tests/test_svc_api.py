"""Tests for the experiment service's HTTP surface (:mod:`repro.svc.api`)
and client: endpoint discovery, submit/status/query/leaderboard round
trips, every error path, concurrent submitters against one daemon, and
``exp run --remote`` going through a live service.

The server runs on the test's own event loop; the synchronous
:class:`ServiceClient` calls are pushed through ``asyncio.to_thread`` so
they never block the loop they are talking to.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.exp.spec import ExperimentSpec
from repro.sim.cli import main
from repro.svc.api import ENDPOINT_FILENAME, ServiceServer, endpoint_url
from repro.svc.client import ServiceClient, ServiceError
from repro.svc.daemon import ExperimentDaemon
from repro.svc.store import ShardedResultStore

SPEC = ExperimentSpec(
    name="api-grid", scenarios=("paper-ttl-tight",),
    protocols=("Epidemic", "Direct Delivery"), seeds=(7, 8), num_runs=1)


def with_server(tmp_path, scenario, chunk_size=4):
    """Run ``await scenario(daemon, server, client)`` behind a live API."""
    async def _main():
        daemon = ExperimentDaemon(tmp_path / "store", chunk_size=chunk_size)
        await daemon.start(recover=False)
        server = ServiceServer(daemon)
        await server.start()
        try:
            return await scenario(daemon, server, ServiceClient(server.url))
        finally:
            await server.stop()

    return asyncio.run(_main())


def call(fn, *args, **kwargs):
    """A blocking client call, off the event loop."""
    return asyncio.to_thread(fn, *args, **kwargs)


class TestLifecycle:
    def test_health_and_endpoint_file(self, tmp_path):
        async def scenario(daemon, server, client):
            health = await call(client.health)
            assert health["ok"] is True and health["records"] == 0
            endpoint = daemon.root / ENDPOINT_FILENAME
            assert json.loads(endpoint.read_text())["url"] == server.url
            assert endpoint_url(daemon.root) == server.url
            return endpoint

        endpoint = with_server(tmp_path, scenario)
        # a clean stop removes the discovery file
        assert not endpoint.exists()
        assert endpoint_url(tmp_path / "store") is None

    def test_submit_runs_grid_and_queries_match_offline(self, tmp_path):
        async def scenario(daemon, server, client):
            info = await call(client.submit, SPEC.to_dict(), 3)
            assert info["state"] == "queued" and info["priority"] == 3
            payload = await call(client.wait, info["id"], 0.05, 60.0)
            assert payload["submission"]["state"] == "done"
            assert payload["done"] == payload["total_jobs"] == 4

            listed = await call(client.submissions)
            assert [row["id"] for row in listed] == [info["id"]]

            remote_entries = await call(client.query, None, "Epidemic")
            remote_bodies = await call(
                client.query, None, "Epidemic", None, None, None, None, True)
            board = await call(client.leaderboard)
            summary = await call(client.summary)
            health = await call(client.health)
            assert health["jobs_executed"] == 4
            return remote_entries, remote_bodies, board, summary

        entries, bodies, board, summary = with_server(tmp_path, scenario)
        store = ShardedResultStore(tmp_path / "store")
        assert entries == store.query_entries(protocol="Epidemic")
        assert bodies == store.query(protocol="Epidemic")
        assert board == store.leaderboard()
        assert summary["records"] == 4 and summary["ok"] == 4

    def test_remote_cancel_of_a_queued_submission(self, tmp_path):
        # the first grid is large enough (60 jobs) that the serial
        # scheduler is still busy when the cancel lands, so the second
        # submission is deterministically still queued
        busy = SPEC.with_overrides(name="busy", seeds=tuple(range(30)))

        async def scenario(daemon, server, client):
            first = await call(client.submit, busy.to_dict())
            queued = await call(
                client.submit,
                SPEC.with_overrides(name="later", seeds=(9,)).to_dict())
            cancelled = await call(client.cancel, queued["id"])
            await call(client.wait, first["id"], 0.05, 120.0)
            final = await call(client.status, queued["id"])
            return cancelled, final["submission"]

        cancelled, final = with_server(tmp_path, scenario)
        assert cancelled["state"] == "cancelled"
        assert final["state"] == "cancelled" and final["executed"] == 0


class TestErrorPaths:
    def test_every_4xx_surface(self, tmp_path):
        async def scenario(daemon, server, client):
            statuses = {}

            async def expect(name, fn, *args):
                with pytest.raises(ServiceError) as excinfo:
                    await call(fn, *args)
                statuses[name] = excinfo.value.status

            await expect("bad-spec", client.submit, {"name": "broken"})
            await expect("unknown-status", client.status, "sub-999999")
            await expect("unknown-cancel", client.cancel, "sub-999999")
            await expect("bad-route", client._request, "GET", "/nope")
            await expect("bad-method", client._request, "GET", "/submit")
            await expect("bad-param", client._request, "GET", "/query?x=1")
            await expect("bad-seed", client._request, "GET",
                         "/query?seed=abc")
            await expect("bad-body", client._request, "POST", "/submit",
                         {"spec": "not-a-dict"})
            daemon._draining = True
            await expect("draining", client.submit, SPEC.to_dict())
            daemon._draining = False
            return statuses

        statuses = with_server(tmp_path, scenario)
        assert statuses == {"bad-spec": 400, "unknown-status": 404,
                            "unknown-cancel": 404, "bad-route": 404,
                            "bad-method": 405, "bad-param": 400,
                            "bad-seed": 400, "bad-body": 400,
                            "draining": 409}

    def test_client_rejects_non_http_urls(self):
        with pytest.raises(ValueError, match="plain http"):
            ServiceClient("https://example.com")
        with pytest.raises(ValueError, match="no host"):
            ServiceClient("http://")

    def test_client_reports_unreachable_service(self):
        client = ServiceClient("http://127.0.0.1:1", timeout=0.5)
        with pytest.raises(ServiceError, match="cannot reach"):
            client.health()


class TestConcurrentSubmitters:
    def test_two_submitters_one_daemon_dedupes_shared_jobs(self, tmp_path):
        """Two clients race the *same* grid into one daemon: every job
        runs exactly once, both submissions settle, the store holds one
        record per job."""
        async def scenario(daemon, server, client):
            other = ServiceClient(server.url)
            first, second = await asyncio.gather(
                call(client.submit, SPEC.to_dict()),
                call(other.submit, SPEC.to_dict()))
            assert first["id"] != second["id"]
            payloads = await asyncio.gather(
                call(client.wait, first["id"], 0.05, 60.0),
                call(other.wait, second["id"], 0.05, 60.0))
            return daemon, [p["submission"] for p in payloads]

        daemon, submissions = with_server(tmp_path, scenario)
        assert daemon.jobs_executed == 4
        assert {s["state"] for s in submissions} == {"done"}
        assert sum(s["executed"] for s in submissions) == 4
        assert sum(s["reused"] for s in submissions) == 4
        assert len(ShardedResultStore(tmp_path / "store")) == 4


class TestCliIntegration:
    def test_exp_run_remote_submits_through_the_service(self, tmp_path):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(SPEC.to_dict()))

        async def scenario(daemon, server, client):
            code = await asyncio.to_thread(
                main, ["exp", "run", str(spec_path),
                       "--remote", server.url])
            health = await call(client.health)
            return code, health

        code, health = with_server(tmp_path, scenario)
        assert code == 0
        assert health["jobs_executed"] == 4
        assert len(ShardedResultStore(tmp_path / "store")) == 4

    def test_svc_submit_and_status_cli_against_live_service(self, tmp_path,
                                                            capsys):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(SPEC.to_dict()))
        out_path = tmp_path / "submit.json"

        async def scenario(daemon, server, client):
            code = await asyncio.to_thread(
                main, ["svc", "submit", str(spec_path),
                       "--url", server.url, "--wait",
                       "--json", str(out_path)])
            status_code = await asyncio.to_thread(
                main, ["svc", "status", "--url", server.url])
            return code, status_code

        code, status_code = with_server(tmp_path, scenario)
        assert code == 0 and status_code == 0
        summary = json.loads(out_path.read_text())
        assert summary["state"] == "done"
        assert summary["executed"] + summary["reused"] == 4
        assert "api-grid" in capsys.readouterr().out
