"""Unit tests for the stateful protocol zoo, registry and compat wrapper."""

from __future__ import annotations

import pytest

from repro.contacts import Contact, ContactTrace
from repro.forwarding import ForwardingSimulator, Message, OnlineContactHistory
from repro.forwarding.algorithms import algorithm_by_name, algorithm_names
from repro.routing import (
    NEW_PROTOCOL_NAMES,
    PAPER_PROTOCOL_NAMES,
    AlgorithmProtocol,
    BinarySprayAndWaitProtocol,
    DirectDeliveryProtocol,
    FirstContactProtocol,
    HypergossipProtocol,
    ProphetProtocol,
    RoutingProtocol,
    SourceSprayAndWaitProtocol,
    ensure_protocol,
    protocol_by_name,
    protocol_catalogue,
    protocol_names,
    register_protocol,
)


# ----------------------------------------------------------------------
# a tiny line topology: 0-1 at t=10, 1-2 at t=20, 2-3 at t=30, 0-3 at t=40
# ----------------------------------------------------------------------
def _line_trace():
    contacts = [
        Contact(10.0, 12.0, 0, 1),
        Contact(20.0, 22.0, 1, 2),
        Contact(30.0, 32.0, 2, 3),
        Contact(40.0, 42.0, 0, 3),
    ]
    return ContactTrace(contacts, nodes=range(4), duration=60.0, name="line")


def _run(protocol, messages, trace=None):
    return ForwardingSimulator(trace or _line_trace(), protocol).run(messages)


class TestRegistry:
    def test_all_twelve_registered(self):
        names = protocol_names()
        assert len(names) >= 12
        assert len(PAPER_PROTOCOL_NAMES) == 6
        assert len(NEW_PROTOCOL_NAMES) >= 6
        assert set(algorithm_names()) <= set(names)

    def test_fresh_instances(self):
        first = protocol_by_name("PRoPHET")
        second = protocol_by_name("PRoPHET")
        assert first is not second

    def test_slug_tolerant_lookup(self):
        assert protocol_by_name("prophet").name == "PRoPHET"
        assert protocol_by_name("binary-spray-and-wait").name == \
            "Binary Spray-and-Wait"
        assert protocol_by_name("DIRECT delivery").name == "Direct Delivery"

    def test_unknown_protocol_raises(self):
        with pytest.raises(KeyError, match="unknown protocol"):
            protocol_by_name("Telepathy")

    def test_reregistration_requires_overwrite(self):
        with pytest.raises(ValueError, match="already registered"):
            register_protocol("Epidemic", DirectDeliveryProtocol)

    def test_slug_collision_rejected(self):
        # would silently hijack protocol_by_name("prophet")
        with pytest.raises(ValueError, match="collides"):
            register_protocol("Pro Phet", DirectDeliveryProtocol)
        assert protocol_by_name("prophet").name == "PRoPHET"

    def test_catalogue_rows(self):
        rows = protocol_catalogue()
        assert len(rows) == len(protocol_names())
        by_name = {row["protocol"]: row for row in rows}
        assert by_name["Epidemic"]["origin"] == "paper"
        assert by_name["PRoPHET"]["origin"] == "zoo"
        assert by_name["Binary Spray-and-Wait"]["replication"] == "L copies"


class TestCompatWrapper:
    def test_wraps_algorithm(self):
        wrapped = ensure_protocol(algorithm_by_name("FRESH"))
        assert isinstance(wrapped, AlgorithmProtocol)
        assert wrapped.name == "FRESH"
        assert not wrapped.stateful

    def test_protocol_passes_through(self):
        protocol = ProphetProtocol()
        assert ensure_protocol(protocol) is protocol

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            ensure_protocol(object())

    @pytest.mark.parametrize("name", algorithm_names())
    def test_wrapped_algorithm_identical_stream(self, name):
        """The acceptance criterion: wrapping changes nothing at all."""
        trace = _line_trace()
        messages = [Message(id=0, source=0, destination=3, creation_time=0.0),
                    Message(id=1, source=1, destination=0, creation_time=15.0)]
        raw = ForwardingSimulator(trace, algorithm_by_name(name)).run(messages)
        wrapped = ForwardingSimulator(
            trace, ensure_protocol(algorithm_by_name(name))).run(messages)
        assert raw.copies_sent == wrapped.copies_sent
        for a, b in zip(raw.outcomes, wrapped.outcomes):
            assert (a.delivered, a.delivery_time, a.hop_count) == \
                (b.delivered, b.delivery_time, b.hop_count)


class TestDirectDelivery:
    def test_only_direct_contacts_deliver(self):
        messages = [Message(id=0, source=0, destination=3, creation_time=0.0),
                    Message(id=1, source=0, destination=1, creation_time=0.0)]
        result = _run(DirectDeliveryProtocol(), messages)
        by_id = {o.message.id: o for o in result.outcomes}
        # 0 meets 3 at t=40; 0 meets 1 at t=10
        assert by_id[0].delivered and by_id[0].delivery_time == 40.0
        assert by_id[0].hop_count == 1
        assert by_id[1].delivered and by_id[1].delivery_time == 10.0
        # exactly one copy per delivery, zero relaying
        assert result.copies_sent == 2


class TestFirstContact:
    def test_token_walks_the_line(self):
        messages = [Message(id=0, source=0, destination=3, creation_time=0.0)]
        result = _run(FirstContactProtocol(), messages)
        outcome = result.outcomes[0]
        # token: 0 -> 1 (t=10) -> 2 (t=20) -> 3 (t=30, delivery)
        assert outcome.delivered
        assert outcome.delivery_time == 30.0
        assert outcome.hop_count == 3
        assert result.copies_sent == 3

    def test_stale_carriers_refuse(self):
        protocol = FirstContactProtocol()
        trace = _line_trace()
        _run(protocol, [Message(id=0, source=0, destination=3,
                                creation_time=0.0)], trace)
        history = OnlineContactHistory()
        message = Message(id=0, source=0, destination=3, creation_time=0.0)
        # after the run the token sits at the destination, nobody forwards
        assert not protocol.should_forward(0, 2, message, 50.0, history)
        assert not protocol.should_forward(1, 0, message, 50.0, history)


class TestSprayAndWait:
    def test_binary_split(self):
        protocol = BinarySprayAndWaitProtocol(copies=8)
        protocol.prepare(_line_trace())
        message = Message(id=0, source=0, destination=3, creation_time=0.0)
        protocol.on_message_created(message, 0.0)
        assert protocol.copies_held(0, 0) == 8
        protocol.on_forwarded(message, 0, 1, 10.0)
        assert protocol.copies_held(0, 0) == 4
        assert protocol.copies_held(0, 1) == 4
        protocol.on_forwarded(message, 1, 2, 20.0)
        assert protocol.copies_held(0, 1) == 2
        assert protocol.copies_held(0, 2) == 2
        assert protocol.total_copies(0) == 8

    def test_wait_phase_blocks_forwarding(self):
        protocol = BinarySprayAndWaitProtocol(copies=2)
        protocol.prepare(_line_trace())
        message = Message(id=0, source=0, destination=3, creation_time=0.0)
        protocol.on_message_created(message, 0.0)
        history = OnlineContactHistory()
        assert protocol.should_forward(0, 1, message, 10.0, history)
        protocol.on_forwarded(message, 0, 1, 10.0)
        # both holders are now down to one copy: wait phase
        assert not protocol.should_forward(0, 2, message, 20.0, history)
        assert not protocol.should_forward(1, 2, message, 20.0, history)

    def test_source_spray_only_source_sprays(self):
        protocol = SourceSprayAndWaitProtocol(copies=3)
        protocol.prepare(_line_trace())
        message = Message(id=0, source=0, destination=3, creation_time=0.0)
        protocol.on_message_created(message, 0.0)
        history = OnlineContactHistory()
        assert protocol.should_forward(0, 1, message, 10.0, history)
        protocol.on_forwarded(message, 0, 1, 10.0)
        # the relay never sprays, the source still can (one copy left to give)
        assert not protocol.should_forward(1, 2, message, 20.0, history)
        assert protocol.should_forward(0, 2, message, 20.0, history)
        protocol.on_forwarded(message, 0, 2, 20.0)
        assert not protocol.should_forward(0, 3, message, 30.0, history)
        assert protocol.total_copies(0) == 3

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            BinarySprayAndWaitProtocol(copies=0)

    def test_prepare_resets_budgets(self):
        protocol = BinarySprayAndWaitProtocol(copies=4)
        messages = [Message(id=0, source=0, destination=3, creation_time=0.0)]
        first = _run(protocol, messages)
        second = _run(protocol, messages)
        assert first.copies_sent == second.copies_sent
        assert [o.delivery_time for o in first.outcomes] == \
            [o.delivery_time for o in second.outcomes]


class TestProphet:
    def test_encounter_raises_predictability(self):
        protocol = ProphetProtocol()
        protocol.prepare(_line_trace())
        history = OnlineContactHistory()
        assert protocol.predictability(0, 1) == 0.0
        protocol.on_contact_start(0, 1, 10.0, history)
        assert protocol.predictability(0, 1) == pytest.approx(0.75)
        protocol.on_contact_start(0, 1, 10.0, history)
        assert protocol.predictability(0, 1) == pytest.approx(0.9375)

    def test_aging_decays(self):
        protocol = ProphetProtocol(gamma=0.5, aging_interval=10.0)
        protocol.prepare(_line_trace())
        history = OnlineContactHistory()
        protocol.on_contact_start(0, 1, 0.0, history)
        p_now = protocol.predictability(0, 1, now=0.0)
        p_later = protocol.predictability(0, 1, now=20.0)
        assert p_later == pytest.approx(p_now * 0.25)

    def test_transitivity(self):
        protocol = ProphetProtocol()
        protocol.prepare(_line_trace())
        history = OnlineContactHistory()
        protocol.on_contact_start(1, 2, 10.0, history)   # 1 knows 2
        protocol.on_contact_start(0, 1, 10.0, history)   # 0 learns 2 via 1
        assert protocol.predictability(0, 2) == pytest.approx(
            0.75 * 0.75 * 0.25)

    def test_forwards_up_the_gradient(self):
        protocol = ProphetProtocol()
        protocol.prepare(_line_trace())
        history = OnlineContactHistory()
        protocol.on_contact_start(1, 3, 10.0, history)
        message = Message(id=0, source=0, destination=3, creation_time=0.0)
        assert protocol.should_forward(0, 1, message, 20.0, history)
        assert not protocol.should_forward(1, 0, message, 20.0, history)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ProphetProtocol(p_encounter=0.0)
        with pytest.raises(ValueError):
            ProphetProtocol(gamma=1.5)
        with pytest.raises(ValueError):
            ProphetProtocol(aging_interval=0.0)


class TestHypergossip:
    def test_p_one_is_epidemic(self):
        trace = _line_trace()
        messages = [Message(id=0, source=0, destination=3, creation_time=0.0)]
        gossip = _run(HypergossipProtocol(p=1.0), messages, trace)
        epidemic = _run(algorithm_by_name("Epidemic"), messages, trace)
        assert gossip.copies_sent == epidemic.copies_sent
        assert gossip.outcomes[0].delivery_time == \
            epidemic.outcomes[0].delivery_time

    def test_p_zero_is_direct_delivery(self):
        messages = [Message(id=0, source=0, destination=3, creation_time=0.0)]
        gossip = _run(HypergossipProtocol(p=0.0), messages)
        direct = _run(DirectDeliveryProtocol(), messages)
        assert gossip.copies_sent == direct.copies_sent
        assert gossip.outcomes[0].delivery_time == \
            direct.outcomes[0].delivery_time

    def test_coin_is_deterministic(self):
        protocol = HypergossipProtocol(p=0.5, seed=3)
        message = Message(id=7, source=0, destination=3, creation_time=0.0)
        history = OnlineContactHistory()
        first = protocol.should_forward(1, 2, message, 10.0, history)
        for _ in range(5):
            assert protocol.should_forward(1, 2, message, 10.0, history) == first

    def test_seed_changes_coins(self):
        coins_a = [HypergossipProtocol(p=0.5, seed=0)._coin(m, 1, 2)
                   for m in range(64)]
        coins_b = [HypergossipProtocol(p=0.5, seed=1)._coin(m, 1, 2)
                   for m in range(64)]
        assert coins_a != coins_b
        assert all(0.0 <= c < 1.0 for c in coins_a + coins_b)

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            HypergossipProtocol(p=1.5)


class TestEngineHooks:
    def test_lifecycle_hooks_fire_in_order(self):
        events = []

        class Recorder(RoutingProtocol):
            name = "Recorder"

            def prepare(self, trace):
                events.append(("prepare", trace.name))

            def on_message_created(self, message, now):
                events.append(("created", message.id, now))

            def on_contact_start(self, a, b, now, history):
                events.append(("start", a, b, now))

            def on_contact_end(self, a, b, now, history):
                events.append(("end", a, b, now))

            def on_forwarded(self, message, carrier, peer, now):
                events.append(("forwarded", message.id, carrier, peer, now))

            def on_delivered(self, message, now):
                events.append(("delivered", message.id, now))

            def should_forward(self, carrier, peer, message, now, history):
                return True

        messages = [Message(id=0, source=0, destination=2, creation_time=0.0)]
        _run(Recorder(), messages)
        assert events[0] == ("prepare", "line")
        assert ("created", 0, 0.0) in events
        assert ("start", 0, 1, 10.0) in events
        assert ("end", 0, 1, 12.0) in events
        assert ("forwarded", 0, 0, 1, 10.0) in events
        assert ("delivered", 0, 20.0) in events
        # creation precedes the first contact of its flood
        assert events.index(("created", 0, 0.0)) < \
            events.index(("start", 0, 1, 10.0))
