"""Unit tests for the dataset registry (repro.datasets)."""

from __future__ import annotations

import pytest

from repro.contacts import describe
from repro.datasets import (
    PAPER_DATASET_KEYS,
    conext06_9_12,
    dataset_spec,
    infocom05,
    infocom06_9_12,
    load_dataset,
    paper_datasets,
)


class TestRegistry:
    def test_paper_keys_present(self):
        assert len(PAPER_DATASET_KEYS) == 4
        for key in PAPER_DATASET_KEYS:
            assert dataset_spec(key).key == key

    def test_unknown_key_raises(self):
        with pytest.raises(KeyError):
            dataset_spec("sigcomm-2042")

    def test_specs_match_paper_population(self):
        spec = dataset_spec("infocom06-9-12")
        assert spec.num_nodes == 98
        assert spec.num_stationary == 20
        assert spec.duration == pytest.approx(3 * 3600.0)

    def test_infocom05_replication_spec(self):
        spec = dataset_spec("infocom05")
        assert spec.num_nodes == 41

    def test_afternoon_datasets_have_dropoff(self):
        assert dataset_spec("infocom06-3-6").afternoon_dropoff
        assert not dataset_spec("infocom06-9-12").afternoon_dropoff


class TestGeneration:
    def test_scaled_generation_is_deterministic(self):
        a = load_dataset("conext06-9-12", scale=0.2)
        b = load_dataset("conext06-9-12", scale=0.2)
        assert a == b

    def test_different_datasets_differ(self):
        a = infocom06_9_12(scale=0.2)
        b = conext06_9_12(scale=0.2)
        assert a != b

    def test_scale_reduces_population(self):
        small = infocom06_9_12(scale=0.2)
        assert small.num_nodes < 98
        assert small.num_nodes >= 10

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            load_dataset("infocom06-9-12", scale=0.0)
        with pytest.raises(ValueError):
            load_dataset("infocom06-9-12", scale=1.5)

    def test_mean_contacts_roughly_match_spec(self):
        spec = dataset_spec("conext06-9-12")
        trace = load_dataset("conext06-9-12", scale=0.25)
        stats = describe(trace)
        assert spec.mean_contacts_per_node * 0.6 < stats.mean_contacts_per_node \
            < spec.mean_contacts_per_node * 1.4

    def test_infocom_denser_than_conext(self):
        infocom = infocom06_9_12(scale=0.25)
        conext = conext06_9_12(scale=0.25)
        assert (describe(infocom).mean_contacts_per_node
                > describe(conext).mean_contacts_per_node)

    def test_paper_datasets_returns_all_four(self):
        traces = paper_datasets(scale=0.15)
        assert set(traces) == set(PAPER_DATASET_KEYS)
        assert all(t.num_nodes >= 10 for t in traces.values())

    def test_infocom05_smaller_population(self):
        trace = infocom05(scale=0.5)
        assert trace.num_nodes < infocom06_9_12(scale=0.5).num_nodes

    def test_custom_seed_changes_trace(self):
        default = load_dataset("infocom06-9-12", scale=0.2)
        reseeded = load_dataset("infocom06-9-12", scale=0.2, seed=999)
        assert default != reseeded

    def test_trace_names_carry_scale(self):
        assert "x0.2" in infocom06_9_12(scale=0.2).name

    def test_full_scale_trace_keeps_plain_name(self):
        trace = dataset_spec("infocom05").generate(scale=1.0)
        assert trace.name == "infocom05"
        assert trace.num_nodes == 41


class TestContactScale:
    def test_contact_scale_reduces_volume(self):
        dense = load_dataset("infocom06-9-12", scale=0.2)
        sparse = load_dataset("infocom06-9-12", scale=0.2, contact_scale=0.2)
        assert len(sparse) < len(dense)

    def test_contact_scale_preserves_population(self):
        sparse = load_dataset("conext06-9-12", scale=0.2, contact_scale=0.2)
        assert sparse.num_nodes == load_dataset("conext06-9-12", scale=0.2).num_nodes

    def test_contact_scale_deterministic(self):
        a = load_dataset("infocom06-3-6", scale=0.2, contact_scale=0.5)
        b = load_dataset("infocom06-3-6", scale=0.2, contact_scale=0.5)
        assert a == b

    def test_contact_scale_validation(self):
        with pytest.raises(ValueError):
            load_dataset("infocom06-9-12", scale=0.2, contact_scale=0.0)
        with pytest.raises(ValueError):
            load_dataset("infocom06-9-12", scale=0.2, contact_scale=2.0)
