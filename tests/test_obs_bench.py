"""Benchmark regression sentinel: noise-aware BENCH_*.json comparison.

Pins the ISSUE 8 acceptance criteria: the sentinel passes on the current
committed artifacts compared against themselves, and demonstrably fails
when a 20% regression is injected into an enforced metric.
"""

from __future__ import annotations

import copy
import json
from pathlib import Path

import pytest

from repro.obs import BenchComparison, check_bench_files, compare_bench
from repro.obs.bench import (
    DEFAULT_NOISE_FACTOR,
    DEFAULT_REL_TOL,
    FALLBACK_REL_NOISE,
    MetricRow,
    _classify,
    _rel_spread,
)

REPO = Path(__file__).resolve().parent.parent
BASELINE_DIR = REPO / "benchmarks" / "baselines"

#: a miniature artifact exercising every metric class the sentinel knows
ARTIFACT = {
    "schema": "bench/1",
    "trace_cache": {
        "speedup": 40.0,
        "cold_s": 2.0,
        "warm_s": 0.05,
        "samples": {"cold_s": [1.9, 2.0, 2.0, 2.1],
                    "warm_s": [0.049, 0.050, 0.050, 0.051]},
    },
    "orchestration_overhead": {
        "overhead": 1.08,
        "engine_only_s": 3.0,
    },
    "throughput": {"events_per_s": 50_000.0},
    "config": {"quick": True, "num_messages": 200},
}


def _with(path, value, artifact=ARTIFACT):
    """A deep copy of *artifact* with the dotted *path* leaf replaced."""
    payload = copy.deepcopy(artifact)
    node = payload
    *scopes, leaf = path.split(".")
    for scope in scopes:
        node = node[scope]
    node[leaf] = value
    return payload


class TestClassification:
    @pytest.mark.parametrize("path,expected", [
        ("trace_cache.speedup", ("higher", True)),
        ("orchestration_overhead.overhead", ("lower", True)),
        ("rows[3].delivery_ratio", ("lower", True)),
        ("obs.tracing_vs_baseline", ("lower", True)),
        ("throughput.events_per_s", ("higher", False)),
        ("trace_cache.cold_s", ("lower", False)),
        ("step.elapsed_ms", ("lower", False)),
        ("config.num_messages", None),
        ("schema", None),
    ])
    def test_metric_classes(self, path, expected):
        assert _classify(path) == expected

    def test_rel_spread_is_iqr_over_median(self):
        assert _rel_spread([1.9, 2.0, 2.0, 2.1]) == pytest.approx(
            0.15 / 2.0, rel=1e-6)
        assert _rel_spread([2.0]) is None  # too few samples
        assert _rel_spread([0.0, 0.0]) is None  # degenerate median


class TestCompare:
    def test_self_compare_is_clean(self):
        comparison = compare_bench(ARTIFACT, ARTIFACT)
        assert comparison.ok
        assert comparison.regressions == []
        assert comparison.improvements == []
        assert all(row.rel_change == 0.0 for row in comparison.rows
                   if row.rel_change is not None)
        assert "OK" in comparison.report()

    def test_injected_20pct_regression_fails(self):
        """The acceptance pin: a 20% hit on an enforced metric trips it."""
        slower = _with("trace_cache.speedup", 40.0 / 1.25)
        comparison = compare_bench(ARTIFACT, slower)
        assert not comparison.ok
        paths = [row.path for row in comparison.regressions]
        assert paths == ["trace_cache.speedup"]
        assert "REGRESSION" in comparison.report()

    def test_overhead_regression_direction(self):
        worse = _with("orchestration_overhead.overhead", 1.08 * 1.25)
        comparison = compare_bench(ARTIFACT, worse)
        assert [row.path for row in comparison.regressions] == \
            ["orchestration_overhead.overhead"]
        # and the opposite move is an improvement, not a regression
        better = _with("orchestration_overhead.overhead", 1.08 / 1.25)
        comparison = compare_bench(ARTIFACT, better)
        assert comparison.ok
        assert [row.path for row in comparison.improvements] == \
            ["orchestration_overhead.overhead"]

    def test_small_changes_stay_under_threshold(self):
        wobble = _with("trace_cache.speedup", 40.0 * 1.05)
        comparison = compare_bench(ARTIFACT, wobble)
        assert comparison.ok and comparison.improvements == []

    def test_times_are_informational_by_default(self):
        slow = _with("trace_cache.cold_s", 4.0)  # 2x slower wall clock
        comparison = compare_bench(ARTIFACT, slow)
        assert comparison.ok
        row = next(r for r in comparison.rows
                   if r.path == "trace_cache.cold_s")
        assert row.status == "info" and not row.enforced

    def test_enforce_times_flips_them_to_enforced(self):
        slow = _with("trace_cache.cold_s", 4.0)
        comparison = compare_bench(ARTIFACT, slow, enforce_times=True)
        assert [row.path for row in comparison.regressions] == \
            ["trace_cache.cold_s"]

    def test_noise_widens_the_threshold(self):
        """A metric inside a noisy scope needs a larger move to trip."""
        noisy = _with("trace_cache.samples",
                      {"cold_s": [1.0, 2.0, 2.0, 4.0]})  # rel spread 1.0
        comparison = compare_bench(noisy, _with("trace_cache.speedup",
                                                40.0 / 1.25, noisy))
        row = next(r for r in comparison.rows
                   if r.path == "trace_cache.speedup")
        assert row.threshold > DEFAULT_REL_TOL
        assert row.status == "ok"  # -20% is inside 2x the noise now

    def test_sampleless_artifact_uses_fallback_noise(self):
        bare = {"stage": {"speedup": 10.0}}
        comparison = compare_bench(bare, bare)
        assert comparison.noise_floor == FALLBACK_REL_NOISE
        row = comparison.rows[0]
        assert row.threshold == max(DEFAULT_REL_TOL,
                                    DEFAULT_NOISE_FACTOR
                                    * FALLBACK_REL_NOISE)

    def test_new_missing_and_zero_baseline_are_not_fatal(self):
        baseline = {"a": {"speedup": 5.0}, "b": {"speedup": 0.0}}
        current = {"b": {"speedup": 1.0}, "c": {"speedup": 2.0}}
        comparison = compare_bench(baseline, current)
        statuses = {row.path: row.status for row in comparison.rows}
        assert statuses == {"a.speedup": "missing",
                            "b.speedup": "zero-baseline",
                            "c.speedup": "new"}
        assert comparison.ok

    def test_as_dict_roundtrips_to_json(self):
        comparison = compare_bench(ARTIFACT, ARTIFACT, name="mini")
        payload = json.loads(json.dumps(comparison.as_dict()))
        assert payload["name"] == "mini" and payload["ok"]
        assert payload["num_metrics"] == len(comparison.rows)


class TestCommittedBaselines:
    def test_baselines_exist_for_every_bench_harness(self):
        names = {path.name for path in BASELINE_DIR.glob("BENCH_*.json")}
        assert names == {"BENCH_enumeration.json", "BENCH_sim.json",
                         "BENCH_routing.json", "BENCH_exp.json",
                         "BENCH_faults.json", "BENCH_obs.json",
                         "BENCH_svc.json"}

    def test_self_check_passes_on_committed_baselines(self):
        comparisons = check_bench_files(BASELINE_DIR, BASELINE_DIR)
        assert len(comparisons) == 7
        assert all(c.ok for c in comparisons)
        assert all(isinstance(c, BenchComparison) for c in comparisons)

    def test_injected_regression_in_committed_baseline_fails(self, tmp_path):
        """End-to-end acceptance pin over the real committed artifact."""
        baseline_path = BASELINE_DIR / "BENCH_exp.json"
        payload = json.loads(baseline_path.read_text())
        payload["records"]["trace_cache"]["speedup"] /= 1.25
        worse_path = tmp_path / "BENCH_exp.json"
        worse_path.write_text(json.dumps(payload))
        comparisons = check_bench_files(baseline_path, worse_path)
        assert len(comparisons) == 1
        assert not comparisons[0].ok
        assert any(row.path.endswith("speedup")
                   for row in comparisons[0].regressions)


class TestFileMatching:
    def test_dir_pair_requires_counterparts(self, tmp_path):
        baseline_dir = tmp_path / "base"
        current_dir = tmp_path / "cur"
        baseline_dir.mkdir()
        current_dir.mkdir()
        (baseline_dir / "BENCH_x.json").write_text(
            json.dumps({"stage": {"speedup": 2.0}}))
        with pytest.raises(FileNotFoundError, match="no current counterpart"):
            check_bench_files(baseline_dir, current_dir)

    def test_empty_baseline_dir_rejected(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(FileNotFoundError, match="no BENCH"):
            check_bench_files(empty, empty)

    def test_mixed_file_and_dir_rejected(self, tmp_path):
        artifact = tmp_path / "BENCH_x.json"
        artifact.write_text(json.dumps({"stage": {"speedup": 2.0}}))
        with pytest.raises(ValueError, match="both be files or both"):
            check_bench_files(artifact, tmp_path)

    def test_metric_row_is_frozen(self):
        row = MetricRow("x.speedup", "higher", True, 1.0, 1.0,
                        0.1, 0.0, "ok")
        with pytest.raises(AttributeError):
            row.status = "regression"
