"""Unit tests for path-explosion analysis (repro.core.explosion)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.contacts import Contact, ContactTrace
from repro.core import (
    PathEnumerator,
    SpaceTimeGraph,
    analyze_dataset,
    analyze_message,
    arrival_curve,
    random_messages,
)


@pytest.fixture
def diamond_trace() -> ContactTrace:
    return ContactTrace(
        [Contact(0.0, 10.0, 0, 1),
         Contact(0.0, 10.0, 0, 2),
         Contact(30.0, 40.0, 1, 3),
         Contact(60.0, 70.0, 2, 3)],
        nodes=range(4), duration=100.0,
    )


class TestAnalyzeMessage:
    def test_basic_record(self, diamond_trace):
        graph = SpaceTimeGraph(diamond_trace, delta=10.0)
        enumerator = PathEnumerator(graph, k=10)
        record = analyze_message(enumerator, 0, 3, 0.0, n_explosion=2)
        assert record.delivered
        assert record.num_paths == 2
        assert record.optimal_duration == pytest.approx(40.0)
        assert record.time_to_explosion == pytest.approx(30.0)  # 70 - 40
        assert record.exploded

    def test_not_exploded_when_too_few_paths(self, diamond_trace):
        graph = SpaceTimeGraph(diamond_trace, delta=10.0)
        enumerator = PathEnumerator(graph, k=10)
        record = analyze_message(enumerator, 0, 3, 0.0, n_explosion=5)
        assert record.delivered
        assert not record.exploded
        assert record.time_to_explosion is None

    def test_undelivered_record(self, diamond_trace):
        graph = SpaceTimeGraph(diamond_trace, delta=10.0)
        enumerator = PathEnumerator(graph, k=10)
        record = analyze_message(enumerator, 3, 0, 80.0, n_explosion=2)
        assert not record.delivered
        assert record.optimal_duration is None
        assert record.t1 is None
        assert record.arrivals_since_t1() == []

    def test_t1_is_absolute_time(self, diamond_trace):
        graph = SpaceTimeGraph(diamond_trace, delta=10.0)
        enumerator = PathEnumerator(graph, k=10)
        record = analyze_message(enumerator, 0, 3, 5.0, n_explosion=2)
        assert record.t1 == pytest.approx(40.0)
        assert record.optimal_duration == pytest.approx(35.0)

    def test_keep_paths_flag(self, diamond_trace):
        graph = SpaceTimeGraph(diamond_trace, delta=10.0)
        enumerator = PathEnumerator(graph, k=10)
        without = analyze_message(enumerator, 0, 3, 0.0, n_explosion=2)
        with_paths = analyze_message(enumerator, 0, 3, 0.0, n_explosion=2,
                                     keep_paths=True)
        assert without.paths == []
        assert len(with_paths.paths) == with_paths.num_paths

    def test_hop_counts_recorded(self, diamond_trace):
        graph = SpaceTimeGraph(diamond_trace, delta=10.0)
        enumerator = PathEnumerator(graph, k=10)
        record = analyze_message(enumerator, 0, 3, 0.0, n_explosion=2)
        assert record.hop_counts == [2, 2]

    def test_rejects_bad_threshold(self, diamond_trace):
        graph = SpaceTimeGraph(diamond_trace, delta=10.0)
        enumerator = PathEnumerator(graph, k=10)
        with pytest.raises(ValueError):
            analyze_message(enumerator, 0, 3, 0.0, n_explosion=0)

    def test_arrivals_since_t1_start_at_zero(self, diamond_trace):
        graph = SpaceTimeGraph(diamond_trace, delta=10.0)
        enumerator = PathEnumerator(graph, k=10)
        record = analyze_message(enumerator, 0, 3, 0.0, n_explosion=2)
        arrivals = record.arrivals_since_t1()
        assert arrivals[0] == 0.0
        assert arrivals[-1] == pytest.approx(30.0)


class TestRandomMessages:
    def test_count_and_structure(self, small_conference_trace):
        messages = random_messages(small_conference_trace, 25, seed=3)
        assert len(messages) == 25
        for source, destination, t1 in messages:
            assert source != destination
            assert source in small_conference_trace.nodes
            assert destination in small_conference_trace.nodes
            assert 0 <= t1 <= small_conference_trace.duration

    def test_default_generation_window_is_two_thirds(self, small_conference_trace):
        messages = random_messages(small_conference_trace, 200, seed=1)
        latest = max(t1 for _, _, t1 in messages)
        assert latest <= small_conference_trace.duration * 2.0 / 3.0

    def test_custom_window(self, small_conference_trace):
        messages = random_messages(small_conference_trace, 50, seed=1,
                                   generation_window=(100.0, 200.0))
        assert all(100.0 <= t1 < 200.0 for _, _, t1 in messages)

    def test_reproducible(self, small_conference_trace):
        assert (random_messages(small_conference_trace, 10, seed=5)
                == random_messages(small_conference_trace, 10, seed=5))

    def test_zero_messages(self, small_conference_trace):
        assert random_messages(small_conference_trace, 0, seed=1) == []

    def test_validation(self, small_conference_trace):
        with pytest.raises(ValueError):
            random_messages(small_conference_trace, -1)
        with pytest.raises(ValueError):
            random_messages(small_conference_trace, 5,
                            generation_window=(500.0, 100.0))
        tiny = ContactTrace([], nodes=[0], duration=10.0)
        with pytest.raises(ValueError):
            random_messages(tiny, 1)


class TestAnalyzeDataset:
    def test_produces_one_record_per_message(self, small_conference_trace):
        messages = random_messages(small_conference_trace, 8, seed=2)
        records = analyze_dataset(small_conference_trace, messages,
                                  n_explosion=20)
        assert len(records) == 8
        assert all(r.n_explosion == 20 for r in records)

    def test_accepts_prebuilt_graph(self, small_conference_trace):
        graph = SpaceTimeGraph(small_conference_trace, delta=10.0)
        messages = random_messages(small_conference_trace, 4, seed=2)
        records = analyze_dataset(small_conference_trace, messages,
                                  n_explosion=10, graph=graph)
        assert len(records) == 4

    def test_most_messages_explode_on_dense_trace(self, small_conference_trace):
        messages = random_messages(small_conference_trace, 15, seed=4)
        records = analyze_dataset(small_conference_trace, messages,
                                  n_explosion=30)
        exploded = sum(1 for r in records if r.exploded)
        # The paper's central observation: the vast majority of delivered
        # messages see an explosion.  On this dense synthetic trace at least
        # half of the messages must reach the (small) threshold.
        assert exploded >= len(records) // 2

    def test_optimal_duration_can_exceed_time_to_explosion(self, small_conference_trace):
        messages = random_messages(small_conference_trace, 20, seed=5)
        records = analyze_dataset(small_conference_trace, messages,
                                  n_explosion=30)
        exploded = [r for r in records if r.exploded]
        assert exploded
        # TE is bounded by the trailing window; T1 is unconstrained, and on
        # average the explosion is quick relative to the slowest optimal path.
        assert max(r.optimal_duration for r in exploded) >= np.median(
            [r.time_to_explosion for r in exploded])


class TestArrivalCurve:
    def test_staircase_without_binning(self, diamond_trace):
        graph = SpaceTimeGraph(diamond_trace, delta=10.0)
        record = analyze_message(PathEnumerator(graph, k=10), 0, 3, 0.0,
                                 n_explosion=2)
        times, counts = arrival_curve(record)
        assert list(times) == [0.0, 30.0]
        assert list(counts) == [1.0, 2.0]

    def test_binned_curve_is_cumulative(self, diamond_trace):
        graph = SpaceTimeGraph(diamond_trace, delta=10.0)
        record = analyze_message(PathEnumerator(graph, k=10), 0, 3, 0.0,
                                 n_explosion=2)
        bins, cumulative = arrival_curve(record, bin_seconds=10.0)
        assert cumulative[-1] == 2.0
        assert np.all(np.diff(cumulative) >= 0)

    def test_empty_for_undelivered(self, diamond_trace):
        graph = SpaceTimeGraph(diamond_trace, delta=10.0)
        record = analyze_message(PathEnumerator(graph, k=10), 3, 0, 90.0,
                                 n_explosion=2)
        times, counts = arrival_curve(record)
        assert times.size == 0 and counts.size == 0

    def test_rejects_bad_bin(self, diamond_trace):
        graph = SpaceTimeGraph(diamond_trace, delta=10.0)
        record = analyze_message(PathEnumerator(graph, k=10), 0, 3, 0.0,
                                 n_explosion=2)
        with pytest.raises(ValueError):
            arrival_curve(record, bin_seconds=0.0)
