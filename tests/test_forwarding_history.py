"""Unit tests for the online contact history (repro.forwarding.history)."""

from __future__ import annotations

import pytest

from repro.forwarding import OnlineContactHistory


class TestOnlineContactHistory:
    def test_empty_history(self):
        history = OnlineContactHistory()
        assert history.num_recorded == 0
        assert history.total_contacts(3) == 0
        assert history.contacts_between(1, 2) == 0
        assert history.last_contact_time(1, 2) is None
        assert not history.has_met(1, 2)

    def test_record_updates_totals(self):
        history = OnlineContactHistory()
        history.record(1, 2, 10.0)
        history.record(1, 3, 20.0)
        assert history.num_recorded == 2
        assert history.total_contacts(1) == 2
        assert history.total_contacts(2) == 1
        assert history.total_contacts(3) == 1

    def test_pair_counts_symmetric(self):
        history = OnlineContactHistory()
        history.record(5, 2, 10.0)
        history.record(2, 5, 30.0)
        assert history.contacts_between(2, 5) == 2
        assert history.contacts_between(5, 2) == 2

    def test_last_contact_time_tracks_latest(self):
        history = OnlineContactHistory()
        history.record(1, 2, 10.0)
        history.record(1, 2, 50.0)
        assert history.last_contact_time(2, 1) == 50.0

    def test_last_contact_time_ignores_out_of_order_older_record(self):
        history = OnlineContactHistory()
        history.record(1, 2, 50.0)
        history.record(1, 2, 10.0)
        assert history.last_contact_time(1, 2) == 50.0

    def test_has_met(self):
        history = OnlineContactHistory()
        history.record(4, 9, 1.0)
        assert history.has_met(9, 4)
        assert not history.has_met(4, 5)

    def test_rejects_self_contact(self):
        with pytest.raises(ValueError):
            OnlineContactHistory().record(1, 1, 0.0)

    def test_snapshot_totals_is_a_copy(self):
        history = OnlineContactHistory()
        history.record(1, 2, 0.0)
        snapshot = history.snapshot_totals()
        snapshot[1] = 99
        assert history.total_contacts(1) == 1
