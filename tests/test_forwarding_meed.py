"""Unit tests for the MEED expected-delay metric (repro.forwarding.meed)."""

from __future__ import annotations

import math

import pytest

from repro.contacts import Contact, ContactTrace
from repro.forwarding import MeedTable, pairwise_expected_delays


class TestPairwiseExpectedDelays:
    def test_single_periodic_pair(self):
        # One instantaneous contact halfway through a 100 s window: the two
        # wrap-around gaps are 50+50=100?  Actually a single contact leaves a
        # single wrap gap of length ~100, so the expected wait is ~50.
        trace = ContactTrace([Contact(50.0, 50.0, 0, 1)], duration=100.0)
        delays = pairwise_expected_delays(trace)
        assert delays[(0, 1)] == pytest.approx(100.0 ** 2 / (2 * 100.0))

    def test_frequent_pair_has_lower_delay(self):
        sparse = ContactTrace([Contact(500.0, 500.0, 0, 1)], duration=1000.0)
        dense = ContactTrace(
            [Contact(float(t), float(t), 0, 1) for t in range(0, 1000, 100)],
            duration=1000.0,
        )
        assert (pairwise_expected_delays(dense)[(0, 1)]
                < pairwise_expected_delays(sparse)[(0, 1)])

    def test_always_in_contact_pair_has_zero_delay(self):
        trace = ContactTrace([Contact(0.0, 1000.0, 0, 1)], duration=1000.0)
        assert pairwise_expected_delays(trace)[(0, 1)] == pytest.approx(0.0)

    def test_overlapping_contacts_merged(self):
        trace = ContactTrace(
            [Contact(0.0, 600.0, 0, 1), Contact(500.0, 1000.0, 0, 1)],
            duration=1000.0,
        )
        assert pairwise_expected_delays(trace)[(0, 1)] == pytest.approx(0.0)

    def test_pairs_that_never_meet_absent(self, tiny_trace):
        delays = pairwise_expected_delays(tiny_trace)
        assert (0, 3) not in delays

    def test_empty_trace(self):
        assert pairwise_expected_delays(ContactTrace([], duration=10.0)) == {}


class TestMeedTable:
    def test_direct_distance_matches_pairwise_delay(self, tiny_trace):
        table = MeedTable.from_trace(tiny_trace)
        delays = pairwise_expected_delays(tiny_trace)
        assert table.distance(0, 1) <= delays[(0, 1)] + 1e-9

    def test_distance_to_self_is_zero(self, tiny_trace):
        table = MeedTable.from_trace(tiny_trace)
        assert table.distance(2, 2) == 0.0

    def test_multi_hop_distance_uses_relays(self, tiny_trace):
        table = MeedTable.from_trace(tiny_trace)
        # 0 and 2 never meet directly but both meet 1.
        assert math.isfinite(table.distance(0, 2))
        assert table.distance(0, 2) <= table.distance(0, 1) + table.distance(1, 2) + 1e-9

    def test_disconnected_nodes_are_unreachable(self):
        trace = ContactTrace([Contact(0.0, 10.0, 0, 1)], nodes=range(3), duration=100.0)
        table = MeedTable.from_trace(trace)
        assert not table.reachable(0, 2)
        assert table.distance(0, 2) == math.inf

    def test_triangle_inequality_through_best_relay(self, star_trace):
        table = MeedTable.from_trace(star_trace)
        # All spoke-to-spoke traffic must route through the hub.
        assert table.distance(1, 2) == pytest.approx(
            table.distance(1, 0) + table.distance(0, 2), rel=1e-9)

    def test_expected_delay_path(self, star_trace):
        table = MeedTable.from_trace(star_trace)
        path = table.expected_delay_path(star_trace, 1, 2)
        assert path == [1, 0, 2]

    def test_expected_delay_path_none_when_disconnected(self):
        trace = ContactTrace([Contact(0.0, 10.0, 0, 1)], nodes=range(3), duration=100.0)
        table = MeedTable.from_trace(trace)
        assert table.expected_delay_path(trace, 0, 2) is None

    def test_symmetry(self, small_conference_trace):
        table = MeedTable.from_trace(small_conference_trace)
        nodes = sorted(small_conference_trace.nodes)
        for a, b in [(nodes[0], nodes[3]), (nodes[1], nodes[-1])]:
            assert table.distance(a, b) == pytest.approx(table.distance(b, a))
