"""Structured trace events: tracer plumbing and engine probe sites.

Pins (a) the tracer API itself — recording, JSONL round-trips, lazy file
creation; (b) that attaching a tracer never changes a simulation's
results; (c) the probe vocabulary: both engines narrate contacts,
creations, forwards, deliveries and drops, and the fault layer adds loss /
retransmit / crash / reboot, with every ``deliver`` event agreeing with
the result's outcome stream.
"""

from __future__ import annotations

import json

import pytest

from repro.contacts import Contact, ContactTrace
from repro.datasets import PAPER_DATASET_KEYS, load_dataset
from repro.forwarding import (
    ForwardingSimulator,
    Message,
    PoissonMessageWorkload,
)
from repro.forwarding.algorithms import algorithm_by_name
from repro.obs import (
    TRACE_EVENTS,
    JsonlTracer,
    RecordingTracer,
    read_trace,
)
from repro.sim import (
    ChannelSpec,
    ChurnSpec,
    DesSimulator,
    ResourceConstraints,
)

_SCALE = 0.2
_RATE = 0.01

DROP_REASONS = {"evicted", "rejected", "source_rejected", "expired",
                "churn", "cancelled"}


def _load(dataset_key=PAPER_DATASET_KEYS[0]):
    trace = load_dataset(dataset_key, scale=_SCALE, contact_scale=_SCALE)
    messages = PoissonMessageWorkload(rate=_RATE).generate(trace, seed=11)
    return trace, messages


def _assert_results_equal(reference, candidate, context=""):
    assert candidate.algorithm == reference.algorithm, context
    assert len(candidate.outcomes) == len(reference.outcomes), context
    for expected, actual in zip(reference.outcomes, candidate.outcomes):
        assert actual.message == expected.message, context
        assert actual.delivered == expected.delivered, context
        assert actual.delivery_time == expected.delivery_time, context
        assert actual.hop_count == expected.hop_count, context
    assert candidate.copies_sent == reference.copies_sent, context


# ----------------------------------------------------------------------
# tracer objects
# ----------------------------------------------------------------------
class TestTracers:
    def test_recording_tracer_buffers_in_order(self):
        tracer = RecordingTracer()
        tracer.emit("create", 1.0, msg=1, src="a", dst="b")
        tracer.emit("deliver", 2.0, msg=1, node="b", hops=1, delay=1.0)
        assert [record["event"] for record in tracer.events] == \
            ["create", "deliver"]
        assert tracer.events[0] == {"event": "create", "t": 1.0,
                                    "msg": 1, "src": "a", "dst": "b"}
        assert tracer.by_event("deliver") == [tracer.events[1]]
        assert tracer.by_event("drop") == []

    def test_jsonl_tracer_round_trips(self, tmp_path):
        path = tmp_path / "nested" / "trace.jsonl"
        with JsonlTracer(path) as tracer:
            tracer.emit("create", 0.5, msg=7, src=0, dst=3)
            tracer.emit("drop", 9.0, msg=7, node=0, reason="expired")
        assert tracer.num_events == 2
        events = read_trace(path)
        assert events == [
            {"event": "create", "t": 0.5, "msg": 7, "src": 0, "dst": 3},
            {"event": "drop", "t": 9.0, "msg": 7, "node": 0,
             "reason": "expired"},
        ]
        # one canonical JSON object per line (sorted keys, no spaces)
        first_line = path.read_text().splitlines()[0]
        assert first_line == json.dumps(events[0], sort_keys=True,
                                        separators=(",", ":"))

    def test_jsonl_tracer_creates_nothing_without_events(self, tmp_path):
        path = tmp_path / "never" / "trace.jsonl"
        tracer = JsonlTracer(path)
        tracer.close()
        assert not path.exists()
        assert not path.parent.exists()

    def test_jsonl_close_is_idempotent(self, tmp_path):
        tracer = JsonlTracer(tmp_path / "t.jsonl")
        tracer.emit("create", 0.0, msg=1, src=0, dst=1)
        tracer.close()
        tracer.close()
        assert len(read_trace(tracer.path)) == 1


# ----------------------------------------------------------------------
# engine probes: results unchanged, events faithful
# ----------------------------------------------------------------------
class TestEngineProbes:
    @pytest.mark.parametrize("dataset_key", PAPER_DATASET_KEYS)
    def test_tracer_does_not_change_results(self, dataset_key):
        trace, messages = _load(dataset_key)
        for simulator_class in (ForwardingSimulator, DesSimulator):
            bare = simulator_class(
                trace, algorithm_by_name("Epidemic")).run(messages)
            traced = simulator_class(
                trace, algorithm_by_name("Epidemic"),
                tracer=RecordingTracer()).run(messages)
            _assert_results_equal(bare, traced,
                                  context=f"{dataset_key} "
                                          f"{simulator_class.__name__}")

    @pytest.mark.parametrize("simulator_class",
                             [ForwardingSimulator, DesSimulator])
    def test_event_stream_is_faithful(self, simulator_class):
        trace, messages = _load()
        tracer = RecordingTracer()
        result = simulator_class(trace, algorithm_by_name("Epidemic"),
                                 tracer=tracer).run(messages)
        assert tracer.events, "a real run must narrate something"
        # vocabulary and monotonic time
        times = [record["t"] for record in tracer.events]
        assert times == sorted(times)
        assert {record["event"] for record in tracer.events} <= \
            set(TRACE_EVENTS)
        # every message announces itself exactly once
        creates = tracer.by_event("create")
        assert len(creates) == len(messages)
        assert [record["msg"] for record in creates] == \
            [message.id for message in messages]
        # deliver events mirror the outcome stream: same ids, times, hops
        delivered = {outcome.message.id: outcome
                     for outcome in result.outcomes if outcome.delivered}
        delivers = tracer.by_event("deliver")
        assert len(delivers) == len(delivered)
        for record in delivers:
            outcome = delivered[record["msg"]]
            assert record["t"] == outcome.delivery_time
            assert record["hops"] == outcome.hop_count
            assert record["delay"] == \
                outcome.delivery_time - outcome.message.creation_time
            assert record["node"] == outcome.message.destination
        # contacts open exactly as often as they close
        assert len(tracer.by_event("contact_start")) == \
            len(tracer.by_event("contact_end")) == len(trace)

    def test_engines_agree_on_the_deliver_stream(self):
        """The equivalence suite pins outcomes; the tracer view of the same
        runs must agree too."""
        trace, messages = _load()
        streams = []
        for simulator_class in (ForwardingSimulator, DesSimulator):
            tracer = RecordingTracer()
            simulator_class(trace, algorithm_by_name("Epidemic"),
                            tracer=tracer).run(messages)
            streams.append(tracer.by_event("deliver"))
        assert streams[0] == streams[1]

    def test_forward_events_count_relay_copies(self):
        contacts = [Contact(0.0, 10.0, 0, 1), Contact(20.0, 30.0, 1, 2)]
        trace = ContactTrace(contacts, nodes=range(3), duration=40.0,
                             name="line")
        messages = [Message(id=0, source=0, destination=2,
                            creation_time=0.0)]
        tracer = RecordingTracer()
        result = DesSimulator(trace, algorithm_by_name("Epidemic"),
                              tracer=tracer).run(messages)
        assert result.outcomes[0].delivered
        forwards = tracer.by_event("forward")
        # 0->1 is a relay copy; 1->2 is the delivery, not a forward
        assert [(record["src"], record["dst"], record["hops"])
                for record in forwards] == [(0, 1, 1)]
        assert len(forwards) + len(tracer.by_event("deliver")) == \
            result.copies_sent


# ----------------------------------------------------------------------
# fault-layer events
# ----------------------------------------------------------------------
class TestFaultEvents:
    def test_lossy_channel_narrates_loss_and_retransmit(self):
        trace, messages = _load()
        tracer = RecordingTracer()
        constraints = ResourceConstraints(channel=ChannelSpec(loss=0.4))
        DesSimulator(trace, algorithm_by_name("Epidemic"),
                     constraints=constraints, seed=11,
                     tracer=tracer).run(messages)
        losses = tracer.by_event("loss")
        retx = tracer.by_event("retransmit")
        assert losses, "a 40% channel must eat transfers"
        assert retx, "eaten transfers must reschedule"
        for record in retx:
            assert record["at"] >= record["t"]

    def test_churn_narrates_crash_reboot_and_truncation(self):
        trace, messages = _load()
        tracer = RecordingTracer()
        constraints = ResourceConstraints(
            churn=ChurnSpec(crash_rate=2e-4, mean_downtime=1800.0))
        result = DesSimulator(trace, algorithm_by_name("Epidemic"),
                              constraints=constraints, seed=11,
                              tracer=tracer).run(messages)
        crashes = tracer.by_event("crash")
        assert crashes, "this crash rate must produce crashes"
        assert len(crashes) == result.stats.node_crashes
        assert tracer.by_event("reboot"), "downtime is finite: nodes return"
        churn_drops = [record for record in tracer.by_event("drop")
                       if record["reason"] == "churn"]
        truncated = [record for record in tracer.by_event("contact_end")
                     if record.get("truncated")]
        assert churn_drops or truncated

    def test_ttl_and_buffers_narrate_expiry_and_eviction(self):
        trace, messages = _load()
        tracer = RecordingTracer()
        constraints = ResourceConstraints(buffer_capacity=2.0, ttl=900.0)
        result = DesSimulator(trace, algorithm_by_name("Epidemic"),
                              constraints=constraints, seed=11,
                              tracer=tracer).run(messages)
        drops = tracer.by_event("drop")
        reasons = {record["reason"] for record in drops}
        assert reasons <= DROP_REASONS
        # an expire event fires for every TTL timer (delivered messages
        # included, with copies possibly 0); the stats counter only counts
        # undelivered messages that ever held a copy — a subset
        expires = tracer.by_event("expire")
        assert len(expires) >= result.stats.expired_messages > 0
        assert all(record["copies"] >= 0 for record in expires)
        evictions = [record for record in drops
                     if record["reason"] == "evicted"]
        assert len(evictions) == result.stats.buffer_evictions
