"""Structured trace events: tracer plumbing and engine probe sites.

Pins (a) the tracer API itself — recording, JSONL round-trips, lazy file
creation; (b) that attaching a tracer never changes a simulation's
results; (c) the probe vocabulary: both engines narrate contacts,
creations, forwards, deliveries and drops, and the fault layer adds loss /
retransmit / crash / reboot, with every ``deliver`` event agreeing with
the result's outcome stream.
"""

from __future__ import annotations

import json

import pytest

from repro.contacts import Contact, ContactTrace
from repro.datasets import PAPER_DATASET_KEYS, load_dataset
from repro.forwarding import (
    ForwardingSimulator,
    Message,
    PoissonMessageWorkload,
)
from repro.forwarding.algorithms import algorithm_by_name
from repro.obs import (
    TRACE_EVENTS,
    JsonlTracer,
    RecordingTracer,
    read_trace,
)
from repro.sim import (
    ChannelSpec,
    ChurnSpec,
    DesSimulator,
    ResourceConstraints,
)

_SCALE = 0.2
_RATE = 0.01

DROP_REASONS = {"evicted", "rejected", "source_rejected", "expired",
                "churn", "cancelled"}


def _load(dataset_key=PAPER_DATASET_KEYS[0]):
    trace = load_dataset(dataset_key, scale=_SCALE, contact_scale=_SCALE)
    messages = PoissonMessageWorkload(rate=_RATE).generate(trace, seed=11)
    return trace, messages


def _assert_results_equal(reference, candidate, context=""):
    assert candidate.algorithm == reference.algorithm, context
    assert len(candidate.outcomes) == len(reference.outcomes), context
    for expected, actual in zip(reference.outcomes, candidate.outcomes):
        assert actual.message == expected.message, context
        assert actual.delivered == expected.delivered, context
        assert actual.delivery_time == expected.delivery_time, context
        assert actual.hop_count == expected.hop_count, context
    assert candidate.copies_sent == reference.copies_sent, context


# ----------------------------------------------------------------------
# tracer objects
# ----------------------------------------------------------------------
class TestTracers:
    def test_recording_tracer_buffers_in_order(self):
        tracer = RecordingTracer()
        tracer.emit("create", 1.0, msg=1, src="a", dst="b")
        tracer.emit("deliver", 2.0, msg=1, node="b", hops=1, delay=1.0)
        assert [record["event"] for record in tracer.events] == \
            ["create", "deliver"]
        assert tracer.events[0] == {"event": "create", "t": 1.0,
                                    "msg": 1, "src": "a", "dst": "b"}
        assert tracer.by_event("deliver") == [tracer.events[1]]
        assert tracer.by_event("drop") == []

    def test_jsonl_tracer_round_trips(self, tmp_path):
        path = tmp_path / "nested" / "trace.jsonl"
        with JsonlTracer(path) as tracer:
            tracer.emit("create", 0.5, msg=7, src=0, dst=3)
            tracer.emit("drop", 9.0, msg=7, node=0, reason="expired")
        assert tracer.num_events == 2
        events = read_trace(path)
        assert events == [
            {"event": "create", "t": 0.5, "msg": 7, "src": 0, "dst": 3},
            {"event": "drop", "t": 9.0, "msg": 7, "node": 0,
             "reason": "expired"},
        ]
        # one canonical JSON object per line (sorted keys, no spaces)
        first_line = path.read_text().splitlines()[0]
        assert first_line == json.dumps(events[0], sort_keys=True,
                                        separators=(",", ":"))

    def test_jsonl_tracer_creates_nothing_without_events(self, tmp_path):
        path = tmp_path / "never" / "trace.jsonl"
        tracer = JsonlTracer(path)
        tracer.close()
        assert not path.exists()
        assert not path.parent.exists()

    def test_jsonl_close_is_idempotent(self, tmp_path):
        tracer = JsonlTracer(tmp_path / "t.jsonl")
        tracer.emit("create", 0.0, msg=1, src=0, dst=1)
        tracer.close()
        tracer.close()
        assert len(read_trace(tracer.path)) == 1


# ----------------------------------------------------------------------
# engine probes: results unchanged, events faithful
# ----------------------------------------------------------------------
class TestEngineProbes:
    @pytest.mark.parametrize("dataset_key", PAPER_DATASET_KEYS)
    def test_tracer_does_not_change_results(self, dataset_key):
        trace, messages = _load(dataset_key)
        for simulator_class in (ForwardingSimulator, DesSimulator):
            bare = simulator_class(
                trace, algorithm_by_name("Epidemic")).run(messages)
            traced = simulator_class(
                trace, algorithm_by_name("Epidemic"),
                tracer=RecordingTracer()).run(messages)
            _assert_results_equal(bare, traced,
                                  context=f"{dataset_key} "
                                          f"{simulator_class.__name__}")

    @pytest.mark.parametrize("simulator_class",
                             [ForwardingSimulator, DesSimulator])
    def test_event_stream_is_faithful(self, simulator_class):
        trace, messages = _load()
        tracer = RecordingTracer()
        result = simulator_class(trace, algorithm_by_name("Epidemic"),
                                 tracer=tracer).run(messages)
        assert tracer.events, "a real run must narrate something"
        # vocabulary and monotonic time
        times = [record["t"] for record in tracer.events]
        assert times == sorted(times)
        assert {record["event"] for record in tracer.events} <= \
            set(TRACE_EVENTS)
        # every message announces itself exactly once
        creates = tracer.by_event("create")
        assert len(creates) == len(messages)
        assert [record["msg"] for record in creates] == \
            [message.id for message in messages]
        # deliver events mirror the outcome stream: same ids, times, hops
        delivered = {outcome.message.id: outcome
                     for outcome in result.outcomes if outcome.delivered}
        delivers = tracer.by_event("deliver")
        assert len(delivers) == len(delivered)
        for record in delivers:
            outcome = delivered[record["msg"]]
            assert record["t"] == outcome.delivery_time
            assert record["hops"] == outcome.hop_count
            assert record["delay"] == \
                outcome.delivery_time - outcome.message.creation_time
            assert record["node"] == outcome.message.destination
        # contacts open exactly as often as they close
        assert len(tracer.by_event("contact_start")) == \
            len(tracer.by_event("contact_end")) == len(trace)

    def test_engines_agree_on_the_deliver_stream(self):
        """The equivalence suite pins outcomes; the tracer view of the same
        runs must agree too."""
        trace, messages = _load()
        streams = []
        for simulator_class in (ForwardingSimulator, DesSimulator):
            tracer = RecordingTracer()
            simulator_class(trace, algorithm_by_name("Epidemic"),
                            tracer=tracer).run(messages)
            streams.append(tracer.by_event("deliver"))
        assert streams[0] == streams[1]

    def test_forward_events_count_relay_copies(self):
        contacts = [Contact(0.0, 10.0, 0, 1), Contact(20.0, 30.0, 1, 2)]
        trace = ContactTrace(contacts, nodes=range(3), duration=40.0,
                             name="line")
        messages = [Message(id=0, source=0, destination=2,
                            creation_time=0.0)]
        tracer = RecordingTracer()
        result = DesSimulator(trace, algorithm_by_name("Epidemic"),
                              tracer=tracer).run(messages)
        assert result.outcomes[0].delivered
        forwards = tracer.by_event("forward")
        # 0->1 is a relay copy; 1->2 is the delivery, not a forward
        assert [(record["src"], record["dst"], record["hops"])
                for record in forwards] == [(0, 1, 1)]
        assert len(forwards) + len(tracer.by_event("deliver")) == \
            result.copies_sent


# ----------------------------------------------------------------------
# fault-layer events
# ----------------------------------------------------------------------
class TestFaultEvents:
    def test_lossy_channel_narrates_loss_and_retransmit(self):
        trace, messages = _load()
        tracer = RecordingTracer()
        constraints = ResourceConstraints(channel=ChannelSpec(loss=0.4))
        DesSimulator(trace, algorithm_by_name("Epidemic"),
                     constraints=constraints, seed=11,
                     tracer=tracer).run(messages)
        losses = tracer.by_event("loss")
        retx = tracer.by_event("retransmit")
        assert losses, "a 40% channel must eat transfers"
        assert retx, "eaten transfers must reschedule"
        for record in retx:
            assert record["at"] >= record["t"]

    def test_churn_narrates_crash_reboot_and_truncation(self):
        trace, messages = _load()
        tracer = RecordingTracer()
        constraints = ResourceConstraints(
            churn=ChurnSpec(crash_rate=2e-4, mean_downtime=1800.0))
        result = DesSimulator(trace, algorithm_by_name("Epidemic"),
                              constraints=constraints, seed=11,
                              tracer=tracer).run(messages)
        crashes = tracer.by_event("crash")
        assert crashes, "this crash rate must produce crashes"
        assert len(crashes) == result.stats.node_crashes
        assert tracer.by_event("reboot"), "downtime is finite: nodes return"
        churn_drops = [record for record in tracer.by_event("drop")
                       if record["reason"] == "churn"]
        truncated = [record for record in tracer.by_event("contact_end")
                     if record.get("truncated")]
        assert churn_drops or truncated

    def test_ttl_and_buffers_narrate_expiry_and_eviction(self):
        trace, messages = _load()
        tracer = RecordingTracer()
        constraints = ResourceConstraints(buffer_capacity=2.0, ttl=900.0)
        result = DesSimulator(trace, algorithm_by_name("Epidemic"),
                              constraints=constraints, seed=11,
                              tracer=tracer).run(messages)
        drops = tracer.by_event("drop")
        reasons = {record["reason"] for record in drops}
        assert reasons <= DROP_REASONS
        # an expire event fires for every TTL timer (delivered messages
        # included, with copies possibly 0); the stats counter only counts
        # undelivered messages that ever held a copy — a subset
        expires = tracer.by_event("expire")
        assert len(expires) >= result.stats.expired_messages > 0
        assert all(record["copies"] >= 0 for record in expires)
        evictions = [record for record in drops
                     if record["reason"] == "evicted"]
        assert len(evictions) == result.stats.buffer_evictions


# ----------------------------------------------------------------------
# streaming reader + payload validation (PR 8)
# ----------------------------------------------------------------------
class TestIterTrace:
    def _write(self, tmp_path, lines):
        path = tmp_path / "trace.jsonl"
        path.write_text("\n".join(lines))
        return path

    def test_streams_lazily_and_matches_read_trace(self, tmp_path):
        from repro.obs import iter_trace

        path = tmp_path / "trace.jsonl"
        with JsonlTracer(path) as tracer:
            for i in range(5):
                tracer.emit("create", float(i), msg=i, src="a", dst="b")
        iterator = iter_trace(path)
        assert iter(iterator) is iterator  # a generator, not a list
        assert list(iterator) == read_trace(path)
        assert len(read_trace(path)) == 5

    def test_truncated_final_line_is_silently_ignored(self, tmp_path):
        import warnings

        from repro.obs import iter_trace

        good = json.dumps({"event": "create", "t": 0.0, "msg": 1,
                           "src": "a", "dst": "b"})
        path = self._write(tmp_path, [good, '{"event": "deliv'])
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # any warning fails the test
            events = list(iter_trace(path))
        assert len(events) == 1

    def test_corrupt_midfile_line_warns_and_skips(self, tmp_path):
        from repro.obs import iter_trace

        good = json.dumps({"event": "crash", "t": 1.0, "node": "a"})
        path = self._write(tmp_path, [good, "{broken", good])
        with pytest.warns(UserWarning, match="line 2"):
            events = list(iter_trace(path))
        assert len(events) == 2

    def test_read_trace_is_the_materialized_iterator(self, tmp_path):
        good = json.dumps({"event": "reboot", "t": 2.0, "node": "x"})
        path = self._write(tmp_path, [good, '{"event": "cr'])
        assert read_trace(path) == [{"event": "reboot", "t": 2.0,
                                     "node": "x"}]


class TestEventValidation:
    def test_taxonomy_constant_matches_engine_reasons(self):
        from repro.obs import DROP_REASONS as TAXONOMY

        assert set(TAXONOMY) == DROP_REASONS

    def test_every_event_has_a_schema(self):
        from repro.obs import EVENT_FIELDS

        assert set(EVENT_FIELDS) == set(TRACE_EVENTS)

    def test_validate_event_accepts_engine_payloads(self):
        from repro.obs import validate_event

        assert validate_event("create", {"msg": 1, "src": "a",
                                         "dst": "b"}) is None
        assert validate_event("deliver", {"msg": 1, "node": "b", "hops": 2,
                                          "delay": 5.0, "src": "a"}) is None
        assert validate_event("drop", {"msg": 1, "node": "b",
                                       "reason": "evicted"}) is None

    def test_validate_event_flags_problems(self):
        from repro.obs import validate_event

        assert "unknown event" in validate_event("teleport", {})
        assert "missing" in validate_event("create", {"msg": 1, "src": "a"})
        assert "unknown field" in validate_event(
            "crash", {"node": "a", "why": "?"})
        assert "taxonomy" in validate_event(
            "drop", {"msg": 1, "node": "b", "reason": "gremlins"})

    def test_jsonl_tracer_rejects_malformed_with_line_number(self, tmp_path):
        tracer = JsonlTracer(tmp_path / "t.jsonl")
        tracer.emit("create", 0.0, msg=1, src="a", dst="b")
        with pytest.raises(ValueError, match="line 2"):
            tracer.emit("drop", 1.0, msg=1, node="a", reason="gremlins")
        tracer.close()
        # the malformed event never reached the file
        assert len(read_trace(tmp_path / "t.jsonl")) == 1

    def test_jsonl_tracer_validation_opt_out(self, tmp_path):
        with JsonlTracer(tmp_path / "t.jsonl", validate=False) as tracer:
            tracer.emit("freeform", 0.0, anything="goes")
        assert read_trace(tmp_path / "t.jsonl") == [
            {"event": "freeform", "t": 0.0, "anything": "goes"}]

    @pytest.mark.parametrize("fault", ["lossy", "churn", "tight"])
    def test_engine_event_streams_validate(self, fault):
        """Every event either engine emits passes the payload schema."""
        from repro.obs import validate_event

        trace, messages = _load()
        constraints = {
            "lossy": ResourceConstraints(
                channel=ChannelSpec(loss=0.3, delay=1.0, jitter=0.5)),
            "churn": ResourceConstraints(
                churn=ChurnSpec(crash_rate=0.0005)),
            "tight": ResourceConstraints(
                buffer_capacity=3, ttl=20000.0,
                channel=ChannelSpec(loss=0.2),
                churn=ChurnSpec(crash_rate=0.0003)),
        }[fault]
        tracer = RecordingTracer()
        DesSimulator(trace, algorithm_by_name("Epidemic"),
                     constraints=constraints, seed=5,
                     tracer=tracer).run(messages)
        for record in tracer.events:
            fields = {k: v for k, v in record.items()
                      if k not in ("event", "t")}
            assert validate_event(record["event"], fields) is None, record
