"""Unit tests for k-shortest valid path enumeration (repro.core.enumeration)."""

from __future__ import annotations

import pytest

from repro.contacts import Contact, ContactTrace
from repro.core import (
    PathEnumerator,
    SpaceTimeGraph,
    enumerate_paths,
    epidemic_infection_times,
    first_delivery_time,
    is_valid_path,
)


@pytest.fixture
def chain_trace() -> ContactTrace:
    """0-1 at [0,10), 1-2 at [30,40), 2-3 at [60,70)."""
    return ContactTrace(
        [Contact(0.0, 10.0, 0, 1),
         Contact(30.0, 40.0, 1, 2),
         Contact(60.0, 70.0, 2, 3)],
        nodes=range(4), duration=100.0,
    )


@pytest.fixture
def diamond_trace() -> ContactTrace:
    """Two disjoint relays from 0 to 3, arriving at different times.

    0-1 at [0,10), 0-2 at [0,10); 1-3 at [30,40); 2-3 at [60,70).
    """
    return ContactTrace(
        [Contact(0.0, 10.0, 0, 1),
         Contact(0.0, 10.0, 0, 2),
         Contact(30.0, 40.0, 1, 3),
         Contact(60.0, 70.0, 2, 3)],
        nodes=range(4), duration=100.0,
    )


class TestBasicEnumeration:
    def test_single_chain_path(self, chain_trace):
        result = enumerate_paths(chain_trace, 0, 3, 0.0, k=10)
        assert result.delivered
        assert result.num_deliveries == 1
        path = result.deliveries[0].path
        assert path.nodes == (0, 1, 2, 3)
        assert result.deliveries[0].time == pytest.approx(70.0)
        assert result.optimal_duration == pytest.approx(70.0)

    def test_no_path_when_created_too_late(self, chain_trace):
        result = enumerate_paths(chain_trace, 0, 3, 50.0, k=10)
        assert not result.delivered
        assert result.optimal_duration is None

    def test_direct_contact_delivery(self, chain_trace):
        result = enumerate_paths(chain_trace, 0, 1, 0.0, k=10)
        assert result.delivered
        assert result.deliveries[0].time == pytest.approx(10.0)
        assert result.deliveries[0].path.nodes == (0, 1)

    def test_diamond_yields_two_paths_in_time_order(self, diamond_trace):
        result = enumerate_paths(diamond_trace, 0, 3, 0.0, k=10)
        assert result.num_deliveries == 2
        first, second = result.deliveries
        assert first.time == pytest.approx(40.0)
        assert first.path.nodes == (0, 1, 3)
        assert second.time == pytest.approx(70.0)
        assert second.path.nodes == (0, 2, 3)

    def test_unreachable_destination(self):
        trace = ContactTrace([Contact(0.0, 10.0, 0, 1)], nodes=range(3), duration=50.0)
        result = enumerate_paths(trace, 0, 2, 0.0, k=5)
        assert not result.delivered

    def test_message_created_mid_window(self, diamond_trace):
        # Created after the 0-1/0-2 contacts have passed: no route remains
        # except none (0 never meets 3).
        result = enumerate_paths(diamond_trace, 0, 3, 15.0, k=10)
        assert not result.delivered

    def test_creation_time_during_active_contact(self):
        # Message created while the source is already in contact with the
        # destination: delivered within that step.
        trace = ContactTrace([Contact(0.0, 50.0, 0, 1)], nodes=range(2), duration=60.0)
        result = enumerate_paths(trace, 0, 1, 25.0, k=5)
        assert result.delivered
        assert result.deliveries[0].time == pytest.approx(30.0)

    def test_accepts_prebuilt_graph(self, chain_trace):
        graph = SpaceTimeGraph(chain_trace, delta=10.0)
        result = enumerate_paths(graph, 0, 3, 0.0, k=10)
        assert result.delivered

    def test_rejects_other_inputs(self):
        with pytest.raises(TypeError):
            enumerate_paths([1, 2, 3], 0, 1, 0.0)


class TestValidation:
    def test_rejects_unknown_source(self, chain_trace):
        with pytest.raises(ValueError):
            enumerate_paths(chain_trace, 99, 3, 0.0)

    def test_rejects_unknown_destination(self, chain_trace):
        with pytest.raises(ValueError):
            enumerate_paths(chain_trace, 0, 99, 0.0)

    def test_rejects_equal_endpoints(self, chain_trace):
        with pytest.raises(ValueError):
            enumerate_paths(chain_trace, 1, 1, 0.0)

    def test_rejects_creation_time_outside_window(self, chain_trace):
        with pytest.raises(ValueError):
            enumerate_paths(chain_trace, 0, 3, 1e6)

    def test_rejects_non_positive_k(self, chain_trace):
        graph = SpaceTimeGraph(chain_trace)
        with pytest.raises(ValueError):
            PathEnumerator(graph, k=0)


class TestValidityOfEnumeratedPaths:
    def test_all_paths_valid_on_synthetic_trace(self, small_conference_trace):
        graph = SpaceTimeGraph(small_conference_trace, delta=10.0)
        enumerator = PathEnumerator(graph, k=50)
        nodes = sorted(small_conference_trace.nodes)
        result = enumerator.enumerate(nodes[0], nodes[-1], 0.0,
                                      max_total_deliveries=50)
        assert result.delivered
        for delivery in result.deliveries:
            assert is_valid_path(delivery.path, graph, nodes[-1])

    def test_paths_start_at_source_and_end_at_destination(self, small_conference_trace):
        graph = SpaceTimeGraph(small_conference_trace, delta=10.0)
        enumerator = PathEnumerator(graph, k=30)
        nodes = sorted(small_conference_trace.nodes)
        source, destination = nodes[1], nodes[-2]
        result = enumerator.enumerate(source, destination, 100.0,
                                      max_total_deliveries=30)
        for delivery in result.deliveries:
            assert delivery.path.source == source
            assert delivery.path.last_node == destination

    def test_deliveries_sorted_by_time(self, small_conference_trace):
        graph = SpaceTimeGraph(small_conference_trace, delta=10.0)
        enumerator = PathEnumerator(graph, k=40)
        nodes = sorted(small_conference_trace.nodes)
        result = enumerator.enumerate(nodes[2], nodes[-1], 0.0,
                                      max_total_deliveries=40)
        times = result.arrival_times()
        assert times == sorted(times)

    def test_paths_are_distinct(self, small_conference_trace):
        graph = SpaceTimeGraph(small_conference_trace, delta=10.0)
        enumerator = PathEnumerator(graph, k=40)
        nodes = sorted(small_conference_trace.nodes)
        result = enumerator.enumerate(nodes[0], nodes[5], 0.0,
                                      max_total_deliveries=40)
        signatures = [(d.path.nodes, d.path.times) for d in result.deliveries]
        assert len(signatures) == len(set(signatures))


class TestStopRules:
    def test_max_total_deliveries_cap(self, small_conference_trace):
        graph = SpaceTimeGraph(small_conference_trace, delta=10.0)
        enumerator = PathEnumerator(graph, k=200)
        nodes = sorted(small_conference_trace.nodes)
        result = enumerator.enumerate(nodes[0], nodes[1], 0.0,
                                      max_total_deliveries=20)
        assert result.num_deliveries >= 20 or not result.stopped_early

    def test_paper_stop_rule_small_k(self, small_conference_trace):
        graph = SpaceTimeGraph(small_conference_trace, delta=10.0)
        enumerator = PathEnumerator(graph, k=5)
        nodes = sorted(small_conference_trace.nodes)
        result = enumerator.enumerate(nodes[0], nodes[1], 0.0)
        # With a tiny k the per-step stop rule fires long before the window
        # ends on a dense trace.
        assert result.steps_processed <= graph.num_steps

    def test_max_steps_horizon(self, chain_trace):
        graph = SpaceTimeGraph(chain_trace, delta=10.0)
        enumerator = PathEnumerator(graph, k=10)
        result = enumerator.enumerate(0, 3, 0.0, max_steps=3)
        assert result.steps_processed == 3
        assert not result.delivered


class TestResultHelpers:
    def test_time_of_nth_path(self, diamond_trace):
        result = enumerate_paths(diamond_trace, 0, 3, 0.0, k=10)
        assert result.time_of_nth_path(1) == pytest.approx(40.0)
        assert result.time_of_nth_path(2) == pytest.approx(70.0)
        assert result.time_of_nth_path(3) is None
        with pytest.raises(ValueError):
            result.time_of_nth_path(0)

    def test_arrival_durations_relative_to_creation(self, diamond_trace):
        result = enumerate_paths(diamond_trace, 0, 3, 5.0, k=10)
        assert result.arrival_durations()[0] == pytest.approx(35.0)

    def test_paths_helper(self, diamond_trace):
        result = enumerate_paths(diamond_trace, 0, 3, 0.0, k=10)
        assert len(result.paths()) == result.num_deliveries


class TestEpidemicClosure:
    def test_infection_times_chain(self, chain_trace):
        graph = SpaceTimeGraph(chain_trace, delta=10.0)
        times = epidemic_infection_times(graph, 0, 0.0)
        assert times[0] == 0.0
        assert times[1] == pytest.approx(10.0)
        assert times[2] == pytest.approx(40.0)
        assert times[3] == pytest.approx(70.0)

    def test_unreached_nodes_absent(self):
        trace = ContactTrace([Contact(0.0, 10.0, 0, 1)], nodes=range(3), duration=50.0)
        graph = SpaceTimeGraph(trace, delta=10.0)
        times = epidemic_infection_times(graph, 0, 0.0)
        assert 2 not in times

    def test_first_delivery_time_matches_enumeration(self, small_conference_trace):
        graph = SpaceTimeGraph(small_conference_trace, delta=10.0)
        enumerator = PathEnumerator(graph, k=20)
        nodes = sorted(small_conference_trace.nodes)
        for source, destination, t1 in [(nodes[0], nodes[-1], 0.0),
                                        (nodes[3], nodes[7], 300.0),
                                        (nodes[-1], nodes[0], 900.0)]:
            fast = first_delivery_time(graph, source, destination, t1)
            full = enumerator.enumerate(source, destination, t1,
                                        max_total_deliveries=1)
            if fast is None:
                assert not full.delivered
            else:
                assert full.delivered
                assert full.deliveries[0].time == pytest.approx(fast)

    def test_first_delivery_rejects_unknown_destination(self, chain_trace):
        graph = SpaceTimeGraph(chain_trace, delta=10.0)
        with pytest.raises(ValueError):
            first_delivery_time(graph, 0, 99, 0.0)

    def test_epidemic_rejects_unknown_source(self, chain_trace):
        graph = SpaceTimeGraph(chain_trace, delta=10.0)
        with pytest.raises(ValueError):
            epidemic_infection_times(graph, 99, 0.0)

    def test_within_step_relay(self, dense_burst_trace):
        graph = SpaceTimeGraph(dense_burst_trace, delta=10.0)
        times = epidemic_infection_times(graph, 0, 0.0)
        # All nodes reached in the single burst step.
        burst_time = times[1]
        assert times[2] == burst_time and times[3] == burst_time


class TestFirstPreferenceInEnumeration:
    def test_no_delivery_after_holder_met_destination(self):
        """Once node 1 meets the destination, its copy must not generate a
        later delivery through node 2."""
        trace = ContactTrace(
            [Contact(0.0, 10.0, 0, 1),     # source hands to 1
             Contact(30.0, 40.0, 1, 3),    # 1 meets destination: delivers here
             Contact(50.0, 60.0, 1, 2),    # 1 meets 2 afterwards
             Contact(70.0, 80.0, 2, 3)],   # 2 meets destination later
            nodes=range(4), duration=100.0,
        )
        result = enumerate_paths(trace, 0, 3, 0.0, k=50)
        assert result.num_deliveries == 1
        assert result.deliveries[0].path.nodes == (0, 1, 3)

    def test_source_delivery_stops_source_copies(self):
        """After the source itself meets the destination, later relays of the
        source's copy would violate first preference and are not counted."""
        trace = ContactTrace(
            [Contact(10.0, 20.0, 0, 3),    # source meets destination
             Contact(30.0, 40.0, 0, 1),
             Contact(50.0, 60.0, 1, 3)],
            nodes=range(4), duration=100.0,
        )
        result = enumerate_paths(trace, 0, 3, 0.0, k=50)
        assert result.num_deliveries == 1
        assert result.deliveries[0].path.nodes == (0, 3)

    def test_descendant_copies_are_purged_when_holder_meets_destination(self):
        """A copy that passed through node 1 cannot deliver after node 1 has
        met the destination: the paper's first-preference rule says node 1
        would already have delivered, so the longer path is not counted."""
        trace = ContactTrace(
            [Contact(0.0, 10.0, 0, 1),     # source hands to 1
             Contact(20.0, 30.0, 1, 2),    # 1 hands to 2 (before meeting dest)
             Contact(40.0, 50.0, 1, 3),    # 1 delivers: paths through 1 die
             Contact(60.0, 70.0, 2, 3)],   # 2 meets dest later: not counted
            nodes=range(4), duration=100.0,
        )
        result = enumerate_paths(trace, 0, 3, 0.0, k=50)
        assert result.num_deliveries == 1
        assert result.deliveries[0].path.nodes == (0, 1, 3)

    def test_disjoint_relays_both_deliver(self):
        """Copies travelling over node-disjoint relays are independent valid
        paths and are both counted."""
        trace = ContactTrace(
            [Contact(0.0, 10.0, 0, 1),
             Contact(0.0, 10.0, 0, 2),
             Contact(40.0, 50.0, 1, 3),
             Contact(60.0, 70.0, 2, 3)],
            nodes=range(4), duration=100.0,
        )
        result = enumerate_paths(trace, 0, 3, 0.0, k=50)
        assert result.num_deliveries == 2
        node_sequences = {d.path.nodes for d in result.deliveries}
        assert node_sequences == {(0, 1, 3), (0, 2, 3)}
