"""Unit tests for paths and validity predicates (repro.core.path)."""

from __future__ import annotations

import pytest

from repro.contacts import Contact, ContactTrace
from repro.core import (
    Path,
    SpaceTimeGraph,
    is_loop_free,
    is_time_feasible,
    is_valid_path,
    respects_first_preference,
    respects_minimal_progress,
)


@pytest.fixture
def chain_graph() -> SpaceTimeGraph:
    """0-1 at step 0, 1-2 at step 3, 2-3 at step 6, plus 1-3 at step 4."""
    trace = ContactTrace(
        [Contact(0.0, 10.0, 0, 1),
         Contact(30.0, 40.0, 1, 2),
         Contact(40.0, 50.0, 1, 3),
         Contact(60.0, 70.0, 2, 3)],
        nodes=range(4), duration=80.0,
    )
    return SpaceTimeGraph(trace, delta=10.0)


class TestPathBasics:
    def test_single(self):
        path = Path.single(3, 12.0)
        assert path.source == 3
        assert path.last_node == 3
        assert path.hop_count == 0
        assert path.duration == 0.0

    def test_extended_is_new_object(self):
        base = Path.single(0, 0.0)
        longer = base.extended(1, 10.0)
        assert base.hop_count == 0
        assert longer.hop_count == 1
        assert longer.nodes == (0, 1)

    def test_properties(self):
        path = Path(hops=((0, 0.0), (1, 10.0), (2, 30.0)))
        assert path.nodes == (0, 1, 2)
        assert path.times == (0.0, 10.0, 30.0)
        assert path.start_time == 0.0
        assert path.end_time == 30.0
        assert path.duration == 30.0
        assert path.hop_count == 2
        assert len(path) == 3

    def test_intermediate_nodes(self):
        path = Path(hops=((0, 0.0), (1, 10.0), (2, 20.0), (3, 30.0)))
        assert path.intermediate_nodes() == (1, 2)
        assert Path.single(0, 0.0).intermediate_nodes() == ()

    def test_delivers_to_and_visits(self):
        path = Path(hops=((0, 0.0), (5, 10.0)))
        assert path.delivers_to(5)
        assert not path.delivers_to(0)
        assert path.visits(0) and path.visits(5) and not path.visits(7)

    def test_node_set(self):
        assert Path(hops=((0, 0.0), (2, 5.0))).node_set() == frozenset({0, 2})

    def test_rejects_empty_path(self):
        with pytest.raises(ValueError):
            Path(hops=())

    def test_rejects_decreasing_times(self):
        with pytest.raises(ValueError):
            Path(hops=((0, 10.0), (1, 5.0)))

    def test_iteration_yields_hops(self):
        path = Path(hops=((0, 0.0), (1, 10.0)))
        assert list(path) == [(0, 0.0), (1, 10.0)]


class TestLoopFree:
    def test_simple_path_is_loop_free(self):
        assert is_loop_free(Path(hops=((0, 0.0), (1, 1.0), (2, 2.0))))

    def test_repeated_node_is_loop(self):
        assert not is_loop_free(Path(hops=((0, 0.0), (1, 1.0), (0, 2.0))))


class TestMinimalProgress:
    def test_destination_only_at_end(self):
        path = Path(hops=((0, 0.0), (1, 1.0), (9, 2.0)))
        assert respects_minimal_progress(path, 9)

    def test_destination_absent_is_fine(self):
        path = Path(hops=((0, 0.0), (1, 1.0)))
        assert respects_minimal_progress(path, 9)

    def test_destination_in_middle_violates(self):
        path = Path(hops=((0, 0.0), (9, 1.0), (2, 2.0)))
        assert not respects_minimal_progress(path, 9)


class TestTimeFeasibility:
    def test_feasible_chain(self, chain_graph):
        path = Path(hops=((0, 0.0), (1, 10.0), (2, 40.0), (3, 70.0)))
        assert is_time_feasible(path, chain_graph)

    def test_infeasible_when_no_contact(self, chain_graph):
        # 0 and 2 never meet.
        path = Path(hops=((0, 0.0), (2, 40.0)))
        assert not is_time_feasible(path, chain_graph)

    def test_infeasible_when_contact_at_other_time(self, chain_graph):
        # 1-2 meet during step 3 only (T=40), not at T=20.
        path = Path(hops=((0, 0.0), (1, 10.0), (2, 20.0)))
        assert not is_time_feasible(path, chain_graph)

    def test_hop_beyond_trace_window_infeasible(self, chain_graph):
        path = Path(hops=((0, 0.0), (1, 500.0)))
        assert not is_time_feasible(path, chain_graph)

    def test_trivial_path_always_feasible(self, chain_graph):
        assert is_time_feasible(Path.single(0, 3.0), chain_graph)


class TestFirstPreference:
    def test_direct_delivery_respects(self, chain_graph):
        path = Path(hops=((0, 0.0), (1, 10.0), (3, 50.0)))
        assert respects_first_preference(path, chain_graph, 3)

    def test_violation_when_holder_met_destination_earlier(self, chain_graph):
        # Node 1 receives at T=10 and meets 3 during step 4 (T=50); a path
        # that routes 1 -> 2 -> 3 delivering at T=70 is not first preference.
        path = Path(hops=((0, 0.0), (1, 10.0), (2, 40.0), (3, 70.0)))
        assert not respects_first_preference(path, chain_graph, 3)

    def test_non_delivering_path_is_unconstrained(self, chain_graph):
        path = Path(hops=((0, 0.0), (1, 10.0), (2, 40.0)))
        assert respects_first_preference(path, chain_graph, 3)

    def test_contact_before_message_creation_does_not_count(self):
        # Source meets destination before the message exists; delivering via a
        # relay later must still be first preference.
        trace = ContactTrace(
            [Contact(0.0, 10.0, 0, 2),      # before creation
             Contact(30.0, 40.0, 0, 1),
             Contact(60.0, 70.0, 1, 2)],
            nodes=range(3), duration=80.0,
        )
        graph = SpaceTimeGraph(trace, delta=10.0)
        path = Path(hops=((0, 25.0), (1, 40.0), (2, 70.0)))
        assert respects_first_preference(path, graph, 2)


class TestCombinedValidity:
    def test_valid_path(self, chain_graph):
        path = Path(hops=((0, 0.0), (1, 10.0), (3, 50.0)))
        assert is_valid_path(path, chain_graph, 3)

    def test_invalid_due_to_loop(self, chain_graph):
        path = Path(hops=((0, 0.0), (1, 10.0), (0, 10.0)))
        assert not is_valid_path(path, chain_graph, 3)

    def test_invalid_due_to_first_preference(self, chain_graph):
        path = Path(hops=((0, 0.0), (1, 10.0), (2, 40.0), (3, 70.0)))
        assert not is_valid_path(path, chain_graph, 3)

    def test_invalid_due_to_infeasible_hop(self, chain_graph):
        path = Path(hops=((0, 0.0), (3, 10.0)))
        assert not is_valid_path(path, chain_graph, 3)
