"""Property-based tests (hypothesis) for core data structures and invariants."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import empirical_cdf, exponential_growth_rate
from repro.contacts import Contact, ContactTrace
from repro.core import (
    Path,
    PathEnumerator,
    SpaceTimeGraph,
    classify_nodes,
    is_valid_path,
)
from repro.forwarding import EpidemicForwarding, Message, OnlineContactHistory, simulate
from repro.model import InitialPathDistribution, mean_paths, second_moment, variance

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------

node_ids = st.integers(min_value=0, max_value=9)


@st.composite
def contact_strategy(draw, max_time: float = 500.0):
    a = draw(node_ids)
    b = draw(node_ids.filter(lambda x: True))
    if a == b:
        b = (a + 1) % 10
    start = draw(st.floats(min_value=0.0, max_value=max_time, allow_nan=False))
    length = draw(st.floats(min_value=0.0, max_value=100.0, allow_nan=False))
    return Contact(start, start + length, a, b)


@st.composite
def trace_strategy(draw, min_contacts: int = 1, max_contacts: int = 40):
    contacts = draw(st.lists(contact_strategy(), min_size=min_contacts,
                             max_size=max_contacts))
    max_end = max(c.end for c in contacts)
    return ContactTrace(contacts, nodes=range(10), duration=max_end + 50.0)


# ----------------------------------------------------------------------
# Contact / ContactTrace invariants
# ----------------------------------------------------------------------
class TestContactProperties:
    @given(a=node_ids, b=node_ids, start=st.floats(0, 1e5, allow_nan=False),
           length=st.floats(0, 1e4, allow_nan=False))
    def test_pair_always_canonical(self, a, b, start, length):
        if a == b:
            return
        contact = Contact(start, start + length, a, b)
        assert contact.a <= contact.b
        assert contact.peer(contact.a) == contact.b
        assert contact.duration >= 0

    @given(trace=trace_strategy())
    @settings(max_examples=30, suppress_health_check=[HealthCheck.too_slow])
    def test_contact_counts_consistent_with_length(self, trace):
        counts = trace.contact_counts()
        assert sum(counts.values()) == 2 * len(trace)
        assert set(counts) == set(trace.nodes)

    @given(trace=trace_strategy())
    @settings(max_examples=30, suppress_health_check=[HealthCheck.too_slow])
    def test_window_never_increases_contacts(self, trace):
        half = trace.window(0.0, trace.duration / 2)
        assert len(half) <= len(trace)
        assert half.duration == pytest.approx(trace.duration / 2)

    @given(trace=trace_strategy(), t0=st.floats(0, 200, allow_nan=False),
           width=st.floats(1, 200, allow_nan=False))
    @settings(max_examples=30, suppress_health_check=[HealthCheck.too_slow])
    def test_window_contacts_lie_inside_window(self, trace, t0, width):
        t1 = min(t0 + width, trace.duration)
        if t0 >= t1:
            return
        sub = trace.window(t0, t1)
        for contact in sub:
            assert -1e-9 <= contact.start <= sub.duration + 1e-9
            assert contact.end <= sub.duration + 1e-9


# ----------------------------------------------------------------------
# Space-time graph and enumeration invariants
# ----------------------------------------------------------------------
class TestEnumerationProperties:
    @given(trace=trace_strategy(min_contacts=3), data=st.data())
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_every_enumerated_path_is_valid(self, trace, data):
        graph = SpaceTimeGraph(trace, delta=10.0)
        nodes = sorted(trace.nodes)
        source = data.draw(st.sampled_from(nodes))
        destination = data.draw(st.sampled_from([n for n in nodes if n != source]))
        t1 = data.draw(st.floats(min_value=0.0, max_value=trace.duration / 2,
                                 allow_nan=False))
        enumerator = PathEnumerator(graph, k=30)
        result = enumerator.enumerate(source, destination, t1,
                                      max_total_deliveries=30)
        times = result.arrival_times()
        assert times == sorted(times)
        for delivery in result.deliveries:
            path = delivery.path
            assert path.source == source
            assert path.last_node == destination
            assert path.start_time == pytest.approx(t1)
            assert is_valid_path(path, graph, destination)

    @given(trace=trace_strategy(min_contacts=3), data=st.data())
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_enumeration_optimum_lower_bounds_simulation(self, trace, data):
        """A delivery achieved by the event-driven epidemic simulator
        certifies a real space-time path, so the Δ-pooled enumeration must
        also deliver, no later than the simulated time plus one bin."""
        from repro.core import first_delivery_time

        graph = SpaceTimeGraph(trace, delta=10.0)
        nodes = sorted(trace.nodes)
        source = data.draw(st.sampled_from(nodes))
        destination = data.draw(st.sampled_from([n for n in nodes if n != source]))
        message = Message(id=0, source=source, destination=destination,
                          creation_time=0.0)
        outcome = simulate(trace, EpidemicForwarding(), [message]).outcomes[0]
        optimal = first_delivery_time(graph, source, destination, 0.0)
        if outcome.delivered:
            assert optimal is not None
            assert optimal <= outcome.delivery_time + graph.delta + 1e-9


# ----------------------------------------------------------------------
# Classification invariants
# ----------------------------------------------------------------------
class TestClassificationProperties:
    @given(rates=st.dictionaries(node_ids, st.floats(0, 10, allow_nan=False),
                                 min_size=2, max_size=10))
    def test_every_node_classified(self, rates):
        classification = classify_nodes(rates)
        assert set(classification.classes) == set(rates)
        from repro.core import NodeClass

        for node, rate in rates.items():
            expected = NodeClass.IN if rate > classification.threshold else NodeClass.OUT
            assert classification.classes[node] is expected

    @given(rates=st.dictionaries(node_ids, st.floats(0, 10, allow_nan=False),
                                 min_size=4, max_size=10))
    def test_out_group_is_at_least_half(self, rates):
        """With a median threshold, at least half the nodes are 'out'
        (values equal to the median are classified 'out')."""
        classification = classify_nodes(rates)
        from repro.core import NodeClass

        num_out = len(classification.nodes_in_class(NodeClass.OUT))
        assert num_out >= len(rates) / 2


# ----------------------------------------------------------------------
# Analytic model invariants
# ----------------------------------------------------------------------
class TestModelProperties:
    @given(lam=st.floats(0.001, 0.1, allow_nan=False),
           t=st.floats(0.0, 200.0, allow_nan=False),
           num_nodes=st.integers(2, 500))
    def test_moment_inequalities(self, lam, t, num_nodes):
        initial = InitialPathDistribution.single_source(num_nodes)
        mean = mean_paths(t, lam, initial)
        second = second_moment(t, lam, initial)
        var = variance(t, lam, initial)
        assert mean >= 0
        assert second + 1e-9 >= mean ** 2
        assert var == pytest.approx(second - mean ** 2, rel=1e-6, abs=1e-9)

    @given(lam=st.floats(0.001, 0.05, allow_nan=False),
           t1=st.floats(0.0, 100.0, allow_nan=False),
           dt=st.floats(0.0, 100.0, allow_nan=False),
           num_nodes=st.integers(2, 100))
    def test_mean_is_monotone_in_time(self, lam, t1, dt, num_nodes):
        initial = InitialPathDistribution.single_source(num_nodes)
        assert mean_paths(t1 + dt, lam, initial) >= mean_paths(t1, lam, initial) - 1e-12


# ----------------------------------------------------------------------
# History and statistics invariants
# ----------------------------------------------------------------------
class TestHistoryProperties:
    @given(records=st.lists(st.tuples(node_ids, node_ids,
                                      st.floats(0, 1000, allow_nan=False)),
                            max_size=50))
    def test_totals_equal_twice_number_of_records(self, records):
        history = OnlineContactHistory()
        valid = 0
        for a, b, t in records:
            if a == b:
                continue
            history.record(a, b, t)
            valid += 1
        assert history.num_recorded == valid
        assert sum(history.snapshot_totals().values()) == 2 * valid

    @given(samples=st.lists(st.floats(-1e6, 1e6, allow_nan=False), min_size=1,
                            max_size=100))
    def test_empirical_cdf_invariants(self, samples):
        x, cdf = empirical_cdf(samples)
        assert x.size == len(samples)
        assert cdf[-1] == pytest.approx(1.0)
        assert np.all(np.diff(x) >= 0)
        assert np.all(np.diff(cdf) >= 0)

    @given(rate=st.floats(-0.05, 0.05, allow_nan=False),
           scale=st.floats(0.1, 10.0, allow_nan=False))
    def test_growth_rate_recovery(self, rate, scale):
        times = np.linspace(0, 100, 30)
        counts = scale * np.exp(rate * times)
        estimate = exponential_growth_rate(times, counts)
        assert estimate == pytest.approx(rate, abs=1e-6)
