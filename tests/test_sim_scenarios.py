"""Scenario registry, runner, sweep, CLI, seeding contract, and summaries."""

from __future__ import annotations

import json

import pytest

from repro.analysis import format_table, run_constraint_sweep
from repro.contacts import Contact, ContactTrace
from repro.forwarding import ForwardingSimulator, Message
from repro.forwarding.algorithms import algorithm_by_name, algorithm_names
from repro.sim import (
    DatasetTraceSpec,
    ResourceConstraints,
    Scenario,
    get_scenario,
    run_scenario,
    scenario_names,
    scenarios,
    sweep_scenario,
)
from repro.sim.cli import main
from repro.synth import derive_rng
from repro.synth.workloads import AllPairsBurstWorkload, HotspotMessageWorkload


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
def test_registry_meets_acceptance_criteria():
    names = scenario_names()
    assert len(names) >= 6
    constrained = [name for name in names
                   if get_scenario(name).is_constrained]
    assert len(constrained) >= 2
    # names are unique by construction; every spec round-trips via lookup
    for name in names:
        assert get_scenario(name).name == name


def test_every_scenario_runs_end_to_end():
    for name in scenario_names():
        nodes = get_scenario(name).node_count()
        if nodes is not None and nodes > 500:
            # city-scale scenarios (rwp-city-*) exist for the vector
            # engine's benchmarks; the DES pass here would take minutes
            continue
        result = run_scenario(name)
        assert result.num_messages > 0, name
        summaries = result.summaries()
        assert set(summaries) == set(get_scenario(name).algorithms), name
        for summary in summaries.values():
            assert 0.0 <= summary["success_rate"] <= 1.0, name
        # the formatted table renders without blowing up
        assert "algorithm" in format_table(result.table_rows())


def test_unknown_scenario_and_algorithm_raise():
    with pytest.raises(KeyError, match="unknown scenario"):
        get_scenario("definitely-not-registered")
    with pytest.raises(KeyError, match="unknown algorithm"):
        algorithm_by_name("Telepathy")
    # scenarios validate names against the routing registry, which also
    # covers the paper algorithms; the error names the valid protocols
    with pytest.raises(ValueError, match="valid protocols"):
        Scenario(name="bad", description="", trace=DatasetTraceSpec(key="infocom05"),
                 workload=None, algorithms=("Telepathy",))
    # with_overrides revalidates: a bad override fails at the call site,
    # not deep inside a run
    with pytest.raises(ValueError, match="unknown protocol 'Telepathy'"):
        get_scenario("paper-ideal").with_overrides(algorithms=("Telepathy",))


def test_scenario_runs_are_reproducible():
    first = run_scenario("rwp-courtyard-lossy")
    second = run_scenario("rwp-courtyard-lossy")
    assert first.trace_name == second.trace_name
    for name in first.results:
        a = first.pooled(name)
        b = second.pooled(name)
        assert [o.delivery_time for o in a.outcomes] == \
            [o.delivery_time for o in b.outcomes]
        assert a.copies_sent == b.copies_sent
    # a different master seed changes the workload
    reseeded = run_scenario("rwp-courtyard-lossy", seed=12345)
    assert reseeded.num_messages != first.num_messages or any(
        [o.message for o in reseeded.pooled(name).outcomes] !=
        [o.message for o in first.pooled(name).outcomes]
        for name in first.results
    )


def test_parallel_scenario_run_matches_serial():
    serial = run_scenario("paper-buffer-crunch", num_runs=2)
    parallel = run_scenario("paper-buffer-crunch", num_runs=2,
                            parallel=True, n_workers=2)
    for name in serial.results:
        a, b = serial.pooled(name), parallel.pooled(name)
        assert [(o.delivered, o.delivery_time, o.hop_count) for o in a.outcomes] == \
            [(o.delivered, o.delivery_time, o.hop_count) for o in b.outcomes]
        assert a.stats.as_dict() == b.stats.as_dict()


def test_sweep_is_paired_and_ordered():
    values = [2.0, 6.0, None]
    sweep = sweep_scenario("paper-buffer-crunch", "buffer_capacity", values)
    assert sweep.values == values
    rows = sweep.table_rows()
    algorithms = get_scenario("paper-buffer-crunch").algorithms
    assert len(rows) == len(values) * len(algorithms)
    # monotone-ish sanity: unlimited buffers deliver at least as much as
    # 2-message buffers for every algorithm (same trace, same workload)
    for name in algorithms:
        tight = sweep.by_value[2.0][name].summary()["success_rate"]
        loose = sweep.by_value[None][name].summary()["success_rate"]
        assert loose >= tight


def test_ttl_sweep_rejects_per_message_ttl_workloads():
    """Message-level ttl beats the constraints-level default, so sweeping
    ttl over such a workload would be a silent no-op — refuse it."""
    from repro.forwarding import PoissonMessageWorkload

    base = get_scenario("paper-ttl-tight")
    stamped = base.with_overrides(
        name="stamped-ttl",
        workload=PoissonMessageWorkload(rate=0.01, ttl=600.0))
    with pytest.raises(ValueError, match="per-message ttl"):
        sweep_scenario(stamped, "ttl", [300.0, None])
    # other axes remain sweepable on the same scenario
    sweep = sweep_scenario(stamped, "buffer_capacity", [4.0, None])
    assert sweep.values == [4.0, None]


def test_run_constraint_sweep_via_analysis():
    sweep = run_constraint_sweep("paper-ttl-tight", "ttl", [300.0, None])
    assert sweep.parameter == "ttl"
    success_at = {value: sweep.by_value[value]["Epidemic"].summary()["success_rate"]
                  for value in (300.0, None)}
    assert success_at[None] >= success_at[300.0]
    with pytest.raises(ValueError, match="cannot sweep"):
        run_constraint_sweep("paper-ttl-tight", "drop_policy", ["drop-oldest"])


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_list_and_run(capsys, tmp_path):
    assert main(["sim", "list"]) == 0
    captured = capsys.readouterr().out
    for name in scenario_names():
        assert name in captured

    out_path = tmp_path / "run.json"
    assert main(["sim", "run", "paper-ttl-tight", "--json", str(out_path)]) == 0
    captured = capsys.readouterr().out
    assert "paper-ttl-tight" in captured
    payload = json.loads(out_path.read_text())
    assert payload["scenario"] == "paper-ttl-tight"
    assert payload["rows"]


def test_cli_sweep_and_bench(capsys, tmp_path):
    out_path = tmp_path / "sweep.json"
    assert main(["sim", "sweep", "paper-buffer-crunch",
                 "--param", "buffer_capacity", "--values", "2,8,inf",
                 "--json", str(out_path)]) == 0
    payload = json.loads(out_path.read_text())
    assert payload["parameter"] == "buffer_capacity"
    assert len(payload["rows"]) == 3 * len(
        get_scenario("paper-buffer-crunch").algorithms)
    capsys.readouterr()

    assert main(["bench", "--repeats", "1"]) == 0
    captured = capsys.readouterr().out
    assert "trace_driven_ms" in captured


# ----------------------------------------------------------------------
# seeding contract
# ----------------------------------------------------------------------
def test_derive_rng_determinism_and_independence():
    assert derive_rng(7, "trace").integers(1 << 30) == \
        derive_rng(7, "trace").integers(1 << 30)
    assert derive_rng(7, "trace").integers(1 << 30) != \
        derive_rng(7, "workload").integers(1 << 30)
    assert derive_rng(7, "a", "b").integers(1 << 30) != \
        derive_rng(7, "ab").integers(1 << 30)


def test_scenario_traces_and_workloads_are_bit_reproducible():
    scenario = get_scenario("rwp-courtyard")
    trace_a, trace_b = scenario.build_trace(), scenario.build_trace()
    assert trace_a == trace_b
    messages_a = scenario.build_messages(trace_a, run_index=0)
    messages_b = scenario.build_messages(trace_b, run_index=0)
    assert messages_a == messages_b
    assert scenario.build_messages(trace_a, run_index=1) != messages_a


def test_workload_generators_follow_seed_contract():
    trace = ContactTrace([Contact(0.0, 10.0, 0, 1)], nodes=range(8),
                         duration=600.0, name="w")
    burst = AllPairsBurstWorkload(burst_times=(0.0, 100.0),
                                  max_pairs_per_burst=10)
    assert burst.generate(trace, seed=3) == burst.generate(trace, seed=3)
    full = AllPairsBurstWorkload(burst_times=(50.0,))
    assert len(full.generate(trace, seed=0)) == 8 * 7

    hotspot = HotspotMessageWorkload(num_messages=40, num_hotspots=2,
                                     hotspot_share=1.0, mode="source")
    messages = hotspot.generate(trace, seed=5)
    assert messages == hotspot.generate(trace, seed=5)
    sources = {message.source for message in messages}
    assert sources <= set(hotspot.hotspot_nodes(trace, seed=5))
    assert len(sources) <= 2

    # a single sink hotspot must not crash even when the uniformly drawn
    # source would have collided with it
    sink = HotspotMessageWorkload(num_messages=40, num_hotspots=1,
                                  hotspot_share=1.0, mode="sink")
    for seed in range(5):
        drain = sink.generate(trace, seed=seed)
        (the_sink,) = set(message.destination for message in drain)
        assert all(message.source != the_sink for message in drain)


# ----------------------------------------------------------------------
# SimulationResult.summary
# ----------------------------------------------------------------------
def test_simulation_result_summary_keys_and_values():
    contacts = [Contact(0.0, 10.0, 0, 1), Contact(20.0, 30.0, 1, 2)]
    trace = ContactTrace(contacts, nodes=range(4), duration=50.0, name="s")
    messages = [Message(id=0, source=0, destination=2, creation_time=0.0),
                Message(id=1, source=0, destination=3, creation_time=0.0)]
    result = ForwardingSimulator(trace, algorithm_by_name("Epidemic")).run(messages)
    summary = result.summary()
    assert summary["num_messages"] == 2
    assert summary["num_delivered"] == 1
    assert summary["success_rate"] == pytest.approx(0.5)
    assert summary["mean_delay_s"] == pytest.approx(20.0)
    assert summary["median_delay_s"] == pytest.approx(20.0)
    # copies: message 0 hops 0->1 (t=0) and 1->2 (delivery, t=20); message 1
    # is epidemic-copied 0->1 (t=0) and 1->2 (t=20) -> 4 copies total
    assert summary["copies_sent"] == 4
    assert summary["copies_per_delivery"] == pytest.approx(4.0)


def test_summary_handles_empty_and_undelivered():
    from repro.forwarding import SimulationResult
    empty = SimulationResult(algorithm="X", trace_name="t")
    summary = empty.summary()
    assert summary["mean_delay_s"] is None
    assert summary["copies_per_delivery"] is None
    assert summary["success_rate"] == 0.0


def test_all_six_algorithms_available_by_name():
    assert len(algorithm_names()) == 6
    for name in algorithm_names():
        assert algorithm_by_name(name).name == name


# ----------------------------------------------------------------------
# merge validation
# ----------------------------------------------------------------------
def test_merge_rejects_mismatched_runs():
    """Pooling runs of different algorithms/traces/constraints used to
    silently report everything under runs[0]'s labels; it must refuse."""
    from repro.sim.runner import merge_constrained_results

    run = run_scenario("paper-ttl-tight")
    epidemic = run.results["Epidemic"][0]
    fresh = run.results["FRESH"][0]
    with pytest.raises(ValueError, match="algorithm"):
        merge_constrained_results([epidemic, fresh])

    other_trace = run_scenario("rwp-courtyard").results["Epidemic"][0]
    with pytest.raises(ValueError, match="trace"):
        merge_constrained_results([epidemic, other_trace])

    relaxed = run_scenario(
        "paper-ttl-tight",
        constraints=ResourceConstraints(ttl=1800.0)).results["Epidemic"][0]
    with pytest.raises(ValueError, match="constraints"):
        merge_constrained_results([epidemic, relaxed])

    # an explicit opt-out still allows deliberate cross-label pools
    merged = merge_constrained_results([epidemic, other_trace],
                                       validate=False)
    assert merged.num_messages == \
        epidemic.num_messages + other_trace.num_messages


def test_merge_accepts_matching_runs_and_pools_fields():
    from repro.sim.runner import merge_constrained_results

    run = run_scenario("paper-buffer-crunch", num_runs=2)
    runs = run.results["Epidemic"]
    merged = merge_constrained_results(runs)
    assert merged.algorithm == "Epidemic"
    assert merged.num_messages == sum(r.num_messages for r in runs)
    assert merged.stats.copies_sent == sum(r.stats.copies_sent for r in runs)
    assert merged.stats.peak_buffer_occupancy == \
        max(r.stats.peak_buffer_occupancy for r in runs)
