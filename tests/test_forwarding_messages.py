"""Unit tests for message workloads (repro.forwarding.messages)."""

from __future__ import annotations

import pytest

from repro.forwarding import Message, PoissonMessageWorkload, UniformMessageWorkload, messages_from_tuples


class TestMessage:
    def test_fields(self):
        message = Message(id=3, source=1, destination=2, creation_time=10.0)
        assert message.endpoints == (1, 2)

    def test_rejects_loopback(self):
        with pytest.raises(ValueError):
            Message(id=0, source=1, destination=1, creation_time=0.0)

    def test_rejects_negative_time(self):
        with pytest.raises(ValueError):
            Message(id=0, source=1, destination=2, creation_time=-1.0)

    def test_messages_from_tuples(self):
        messages = messages_from_tuples([(0, 1, 5.0), (2, 3, 6.0)])
        assert [m.id for m in messages] == [0, 1]
        assert messages[1].source == 2


class TestPoissonWorkload:
    def test_rate_controls_volume(self, small_conference_trace):
        few = PoissonMessageWorkload(rate=0.005).generate(small_conference_trace, seed=1)
        many = PoissonMessageWorkload(rate=0.05).generate(small_conference_trace, seed=1)
        assert len(many) > len(few)

    def test_expected_count_close_to_rate_times_window(self, small_conference_trace):
        rate = 0.05
        workload = PoissonMessageWorkload(rate=rate)
        messages = workload.generate(small_conference_trace, seed=2)
        window = small_conference_trace.duration * 2.0 / 3.0
        expected = rate * window
        assert expected * 0.6 < len(messages) < expected * 1.4

    def test_messages_within_generation_window(self, small_conference_trace):
        workload = PoissonMessageWorkload(rate=0.05, generation_window=(100.0, 500.0))
        messages = workload.generate(small_conference_trace, seed=3)
        assert all(100.0 <= m.creation_time < 500.0 for m in messages)

    def test_messages_sorted_by_time(self, small_conference_trace):
        messages = PoissonMessageWorkload(rate=0.05).generate(small_conference_trace, seed=4)
        times = [m.creation_time for m in messages]
        assert times == sorted(times)

    def test_unique_ids(self, small_conference_trace):
        messages = PoissonMessageWorkload(rate=0.05).generate(small_conference_trace, seed=5)
        ids = [m.id for m in messages]
        assert len(ids) == len(set(ids))

    def test_endpoints_are_valid(self, small_conference_trace):
        messages = PoissonMessageWorkload(rate=0.05).generate(small_conference_trace, seed=6)
        for message in messages:
            assert message.source in small_conference_trace.nodes
            assert message.destination in small_conference_trace.nodes
            assert message.source != message.destination

    def test_reproducible(self, small_conference_trace):
        workload = PoissonMessageWorkload(rate=0.02)
        assert (workload.generate(small_conference_trace, seed=9)
                == workload.generate(small_conference_trace, seed=9))

    def test_validation(self, small_conference_trace):
        with pytest.raises(ValueError):
            PoissonMessageWorkload(rate=0.0)
        workload = PoissonMessageWorkload(rate=0.1, generation_window=(500.0, 100.0))
        with pytest.raises(ValueError):
            workload.generate(small_conference_trace, seed=1)

    def test_paper_default_rate(self):
        assert PoissonMessageWorkload().rate == pytest.approx(0.25)


class TestUniformWorkload:
    def test_exact_count(self, small_conference_trace):
        workload = UniformMessageWorkload(num_messages=17)
        assert len(workload.generate(small_conference_trace, seed=1)) == 17

    def test_sorted_and_within_window(self, small_conference_trace):
        workload = UniformMessageWorkload(num_messages=30,
                                          generation_window=(0.0, 1000.0))
        messages = workload.generate(small_conference_trace, seed=2)
        times = [m.creation_time for m in messages]
        assert times == sorted(times)
        assert all(t < 1000.0 for t in times)

    def test_zero_messages(self, small_conference_trace):
        assert UniformMessageWorkload(num_messages=0).generate(small_conference_trace) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            UniformMessageWorkload(num_messages=-1)
